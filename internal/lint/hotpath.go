package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"bufferqoe/internal/lint/analysis"
)

// Hotpath enforces the zero-allocation discipline on functions
// annotated //qoe:hotpath: the event dispatch, packet forwarding, TCP
// segment, 802.11 transmit and telemetry record paths that the
// per-cell allocation budgets (BENCH_8.json, CI alloc gates) depend
// on. The benchmarks catch a regression after the fact; this analyzer
// names the exact line that would cause it.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: `steady-state allocation sources on //qoe:hotpath functions

Inside a function annotated //qoe:hotpath, flags:

  - function literals (each closure allocates; hoist to a method,
    pooled sim.Handler/ArgHandler, or package function),
  - any fmt.* call (formatting allocates and reflects),
  - implicit conversion of a non-pointer-shaped value to an interface
    (boxing allocates; pointers, funcs, channels and maps are exempt,
    as are untyped nil and constants),
  - append to a slice declared in the same function with zero capacity
    (var s []T, s := []T{}, make([]T, 0)); preallocate with a capacity
    or reuse a scratch buffer.

Closure bodies are not descended into: the closure itself is already
the finding.`,
	Run: runHotpath,
}

func runHotpath(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective("hotpath", fn.Doc) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
	return nil, nil
}

func checkHotFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	results := fn.Type.Results
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal allocates a closure on //qoe:hotpath function %s; hoist it to a method, pooled handler, or package function", fn.Name.Name)
			return false // the closure is the finding; don't re-flag its body
		case *ast.CallExpr:
			return checkHotCall(pass, fn, n)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					checkBoxing(pass, fn, pass.TypesInfo.TypeOf(n.Lhs[i]), n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				t := pass.TypesInfo.TypeOf(n.Type)
				for _, v := range n.Values {
					checkBoxing(pass, fn, t, v)
				}
			}
		case *ast.ReturnStmt:
			if results == nil {
				return true
			}
			rts := flattenFields(pass, results)
			if len(n.Results) == len(rts) {
				for i, r := range n.Results {
					checkBoxing(pass, fn, rts[i], r)
				}
			}
		}
		return true
	})
}

// checkHotCall handles calls: fmt bans, append capacity, boxing of
// arguments against parameter types, and conversion boxing. Returns
// whether the walker should descend into the call's children.
func checkHotCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) bool {
	// Builtin append: zero-capacity growth check.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && len(call.Args) > 0 {
				checkAppend(pass, fn, call)
			}
			return true
		}
	}
	// Conversion T(v): boxing when T is an interface.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			checkBoxing(pass, fn, tv.Type, call.Args[0])
		}
		return true
	}
	callee, _ := pass.TypesInfo.Uses[calleeIdent(call)].(*types.Func)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates and reflects on //qoe:hotpath function %s; move formatting off the hot path", callee.Name(), fn.Name.Name)
		return false // don't additionally flag each boxed vararg
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return true
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue // f(xs...): the slice is passed through, no per-element boxing
		}
		checkBoxing(pass, fn, pt, arg)
	}
	return true
}

// checkBoxing reports expr when storing it into target requires
// boxing a non-pointer-shaped value into an interface.
func checkBoxing(pass *analysis.Pass, fn *ast.FuncDecl, target types.Type, expr ast.Expr) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Value != nil || tv.Type == nil {
		return // nil and constants are materialized statically
	}
	if types.IsInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	pass.Reportf(expr.Pos(), "%s value boxed into %s allocates on //qoe:hotpath function %s; pass a pointer-shaped value or restructure the call", tv.Type, target, fn.Name.Name)
}

// pointerShaped reports whether converting t to an interface stores
// the value directly in the interface word (no allocation).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// checkAppend flags append on a slice variable declared in the same
// function with provably zero capacity.
func checkAppend(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if declaredZeroCap(pass, fn, obj) {
		pass.Reportf(call.Pos(), "append grows %s from zero capacity on //qoe:hotpath function %s; preallocate with make(..., n) or reuse a scratch buffer", id.Name, fn.Name.Name)
	}
}

// declaredZeroCap reports whether obj is declared inside fn with a
// provably zero-capacity initializer (var s []T; s := []T{};
// s := []T(nil); make([]T, 0)). Parameters, fields and captures are
// assumed preallocated by their owner.
func declaredZeroCap(pass *analysis.Pass, fn *ast.FuncDecl, obj *types.Var) bool {
	zero := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.TypesInfo.Defs[name] != obj {
					continue
				}
				if len(n.Values) == 0 {
					zero = true // var s []T
				} else if i < len(n.Values) {
					zero = zeroCapExpr(pass, n.Values[i])
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Defs[id] == obj {
					zero = zeroCapExpr(pass, n.Rhs[i])
				}
			}
		}
		return true
	})
	return zero
}

// zeroCapExpr reports whether the initializer yields a slice with
// provably zero capacity.
func zeroCapExpr(pass *analysis.Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				if len(e.Args) >= 3 {
					return false // explicit capacity
				}
				if len(e.Args) == 2 {
					tv := pass.TypesInfo.Types[e.Args[1]]
					return tv.Value != nil && constant.Sign(tv.Value) == 0
				}
			}
		}
		// []T(nil) conversion
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return zeroCapExpr(pass, e.Args[0])
		}
	}
	return false
}

// flattenFields expands a result list into one type per value
// (grouped fields like "(a, b int)" expand to two entries).
func flattenFields(pass *analysis.Pass, fl *ast.FieldList) []types.Type {
	var out []types.Type
	for _, f := range fl.List {
		t := pass.TypesInfo.TypeOf(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

// calleeIdent returns the identifier naming the called function, or
// nil for indirect calls.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	}
	return nil
}
