package lint_test

import (
	"testing"

	"bufferqoe/internal/lint"
	"bufferqoe/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/determinism", lint.Determinism)
}
