package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"bufferqoe/internal/lint/analysis"
)

// Determinism forbids nondeterminism inside the simulator core. A
// cell's value must be a pure function of its CellSpec: the golden
// cross-section tests, CRN seed pairing, warm-cache bit-identity and
// the content-addressed store are all unsound the moment a sim-core
// package reads the wall clock or the process-global random state.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism in the simulator core

Flags, in the sim-core packages (` + strings.Join(simCoreSuffixes, ", ") + `):
wall-clock reads (time.Now, time.Since), real sleeps (time.Sleep), and
calls to the process-global math/rand / math/rand/v2 generators
(constructors like rand.New/NewPCG that wrap an explicit seed are
fine). Additionally — in every package — map iteration inside a
canonical encoding function (//qoe:encodes, or Key/SeedKey/Encode/
Canonical/encode* in sim-core packages), because map order would make
the rendered cache key nondeterministic.`,
	Run: runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	simCore := isSimCore(pass.Pkg.Path())
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if hasDirective("encodes", fn.Doc) || (simCore && isEncoderName(fn.Name.Name)) {
				checkEncoderMapRange(pass, fn)
			}
		}
		if simCore {
			checkClockAndRand(pass, file)
		}
	}
	return nil, nil
}

// isEncoderName recognizes the canonical-encoding naming convention of
// the sim-core packages.
func isEncoderName(name string) bool {
	switch name {
	case "Key", "SeedKey", "Encode", "Canonical":
		return true
	}
	return strings.HasPrefix(name, "encode")
}

// checkEncoderMapRange flags `for range m` over a map anywhere inside
// a canonical encoding function, nested closures included.
func checkEncoderMapRange(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rs.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.Pos(), "map iteration order is nondeterministic inside canonical encoding %s; iterate a sorted slice instead", fn.Name.Name)
			}
		}
		return true
	})
}

// checkClockAndRand flags wall-clock reads and global-generator
// math/rand calls anywhere in a sim-core file.
func checkClockAndRand(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods (e.g. (*rand.Rand).Intn) are seed-driven
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock in sim-core package %s: nondeterministic, corrupts CRN pairing and bit-identical replay; derive time from the sim.Engine clock", fn.Name(), pass.Pkg.Name())
			case "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
				pass.Reportf(sel.Pos(), "time.%s waits on real time in sim-core package %s; schedule simulated events on the sim.Engine instead", fn.Name(), pass.Pkg.Name())
			}
		case "math/rand", "math/rand/v2":
			// Constructors (New, NewPCG, NewSource, NewZipf, ...) build
			// explicitly-seeded generators and are the sanctioned way in;
			// every other top-level function draws from the global,
			// nondeterministically-seeded source.
			if !strings.HasPrefix(fn.Name(), "New") {
				pass.Reportf(sel.Pos(), "rand.%s draws from the process-global random source in sim-core package %s; draw from a sim.RNG stream derived from the CellSpec seed instead", fn.Name(), pass.Pkg.Name())
			}
		}
		return true
	})
}
