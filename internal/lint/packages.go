package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package, ready to be
// handed to analyzers.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists, parses and type-checks the packages matched by patterns,
// resolving every dependency (standard library included) through the
// compiler's export data, so no source outside the matched packages is
// touched. dir is the directory the patterns are interpreted in
// (typically a module root). Only committed, non-test sources are
// loaded: the invariants qoelint enforces govern shipped simulator
// code, and test files are free to use wall clocks and global
// randomness.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, exports, nil)
	var pkgs []*Package
	for _, lp := range roots {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := TypeCheck(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   lp.ImportPath,
			Dir:       lp.Dir,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// ExportDataImporter returns a types.Importer that resolves imports
// from compiler export data files: exports maps an import path to the
// file holding its gc export data (the `go list -export` Export field,
// or a vet config's PackageFile), and importMap optionally rewrites
// source-level import paths to canonical ones first (vendoring, test
// variants). Used by both the standalone loader and the vettool mode.
func ExportDataImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// TypeCheck type-checks one package's parsed files with full
// expression and selection information, resolving imports through imp.
func TypeCheck(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
