package sizing

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBDPPackets(t *testing.T) {
	// Backbone: 155 Mbit/s, 60 ms RTT -> 1.1625 MB -> 775 packets;
	// the paper's 749 uses the OC3 payload rate, so accept the order.
	got := BDPPackets(BackboneRate, 60*time.Millisecond)
	if got < 700 || got > 800 {
		t.Fatalf("backbone BDP = %d packets, want ~749-775", got)
	}
	// Access downlink: 16 Mbit/s, ~48 ms -> ~64 packets.
	got = BDPPackets(AccessDownlinkRate, 48*time.Millisecond)
	if got < 60 || got > 70 {
		t.Fatalf("access downlink BDP = %d, want ~64", got)
	}
}

func TestStanford(t *testing.T) {
	// Paper: BDP/sqrt(n) with n = 3*256 = 768 gives 28 packets from
	// BDP 749 (sqrt(768) = 27.7 -> ceil(749/27.7) = 28).
	if got := StanfordPackets(749, 768); got != 28 {
		t.Fatalf("stanford = %d, want 28", got)
	}
	if got := StanfordPackets(10, 0); got != 10 {
		t.Fatalf("n=0 should floor to n=1, got %d", got)
	}
}

func TestMaxQueueingDelayMatchesTable2(t *testing.T) {
	cases := []struct {
		pkts int
		rate float64
		want time.Duration
		tol  time.Duration
	}{
		// Table 2 access uplink: 8 pkts -> 98 ms (we compute 96 ms:
		// the paper's 2% extra is framing overhead).
		{8, AccessUplinkRate, 98 * time.Millisecond, 5 * time.Millisecond},
		{256, AccessUplinkRate, 3167 * time.Millisecond, 100 * time.Millisecond},
		// Table 2 access downlink: 64 pkts -> 49 ms.
		{64, AccessDownlinkRate, 49 * time.Millisecond, 2 * time.Millisecond},
		{256, AccessDownlinkRate, 195 * time.Millisecond, 5 * time.Millisecond},
		// Table 2 backbone: 749 -> 58 ms, 7490 -> 580 ms.
		{749, BackboneRate, 58 * time.Millisecond, 2 * time.Millisecond},
		{7490, BackboneRate, 580 * time.Millisecond, 10 * time.Millisecond},
		{8, BackboneRate, 600 * time.Microsecond, 100 * time.Microsecond},
		{28, BackboneRate, 2200 * time.Microsecond, 200 * time.Microsecond},
	}
	for _, c := range cases {
		got := MaxQueueingDelay(c.pkts, c.rate)
		diff := got - c.want
		if diff < 0 {
			diff = -diff
		}
		if diff > c.tol {
			t.Errorf("MaxQueueingDelay(%d pkts, %.0f bps) = %v, want %v +- %v",
				c.pkts, c.rate, got, c.want, c.tol)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	up := AccessUplinkTable2()
	if len(up) != 6 {
		t.Fatalf("uplink rows = %d", len(up))
	}
	down := AccessDownlinkTable2()
	if down[3].Scheme != "~BDP" {
		t.Fatalf("downlink 64-pkt scheme = %q", down[3].Scheme)
	}
	bb := BackboneTable2()
	if len(bb) != 4 || bb[1].Scheme != "Stanford" {
		t.Fatalf("backbone rows = %+v", bb)
	}
	// Delays must increase with buffer size.
	for i := 1; i < len(up); i++ {
		if up[i].Delay <= up[i-1].Delay {
			t.Fatal("uplink delays not monotone")
		}
	}
}

func TestLoadAware(t *testing.T) {
	bdp := 100
	if got := LoadAware(bdp, 16, 0.2); got != 200 {
		t.Fatalf("low load = %d, want 2xBDP", got)
	}
	if got := LoadAware(bdp, 16, 0.7); got != 100 {
		t.Fatalf("moderate load = %d, want BDP", got)
	}
	if got := LoadAware(bdp, 16, 0.95); got != 25 {
		t.Fatalf("high load = %d, want BDP/sqrt(16)", got)
	}
}

// Property: Stanford sizing is monotone decreasing in n and never
// exceeds the BDP (for n >= 1).
func TestPropertyStanfordMonotone(t *testing.T) {
	f := func(bdpRaw uint16, n1, n2 uint8) bool {
		bdp := int(bdpRaw%2000) + 1
		a, b := int(n1)+1, int(n2)+1
		if a > b {
			a, b = b, a
		}
		sa, sb := StanfordPackets(bdp, a), StanfordPackets(bdp, b)
		return sb <= sa && sa <= bdp && sb >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: queueing delay is linear in buffer size.
func TestPropertyDelayLinear(t *testing.T) {
	f := func(pktsRaw uint8) bool {
		p := int(pktsRaw) + 1
		d1 := MaxQueueingDelay(p, 1e6).Seconds()
		d2 := MaxQueueingDelay(2*p, 1e6).Seconds()
		return math.Abs(d2-2*d1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCandidates(t *testing.T) {
	got := Candidates([]int{8, 64, 16}, 64, 100, 0, -5)
	want := []int{8, 16, 64, 100}
	if len(got) != len(want) {
		t.Fatalf("Candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Candidates = %v, want %v", got, want)
		}
	}
	if out := Candidates(nil); len(out) != 0 {
		t.Fatalf("empty Candidates = %v", out)
	}
}

func TestNearestIndex(t *testing.T) {
	opts := []int{8, 28, 749, 7490}
	cases := []struct {
		packets, want int
	}{
		{8, 0},
		{20, 1}, // log-nearest to 28, not 8
		{600, 2},
		{7490, 3},
		{100000, 3},
	}
	for _, tc := range cases {
		if got := NearestIndex(tc.packets, opts); got != tc.want {
			t.Fatalf("NearestIndex(%d) = %d, want %d", tc.packets, got, tc.want)
		}
	}
	if NearestIndex(64, nil) != -1 || NearestIndex(0, opts) != -1 {
		t.Fatal("degenerate inputs must return -1")
	}
}
