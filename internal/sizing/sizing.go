// Package sizing implements the buffer sizing schemes the paper
// compares (Table 2): the bandwidth-delay-product rule of thumb
// [Villamizar & Song 1994], the Stanford BDP/sqrt(n) scheme
// [Appenzeller et al. 2004], tiny buffers [Enachescu et al. 2006],
// deliberately bloated buffers (10x BDP), and the load-dependent
// scheme the paper's Section 10 suggests as future work.
package sizing

import (
	"math"
	"sort"
	"time"
)

// FullPacket is the full-sized packet the paper sizes buffers against.
const FullPacket = 1500

// BDPPackets returns the bandwidth-delay product in full-sized packets
// for a link of rate bits/s and the given round-trip time, rounded up.
func BDPPackets(rateBps float64, rtt time.Duration) int {
	bytes := rateBps * rtt.Seconds() / 8
	return int(math.Ceil(bytes / FullPacket))
}

// StanfordPackets returns the Appenzeller BDP/sqrt(n) buffer size for n
// concurrent flows, with a floor of one packet.
func StanfordPackets(bdpPackets, n int) int {
	if n < 1 {
		n = 1
	}
	b := int(math.Ceil(float64(bdpPackets) / math.Sqrt(float64(n))))
	if b < 1 {
		b = 1
	}
	return b
}

// TinyPackets returns the tiny-buffer scheme size (drop-tail buffers of
// roughly 20-50 packets for core routers; the paper's backbone minimum
// of 8 packets "resembles the TinyBuffer scheme").
func TinyPackets() int { return 8 }

// BloatFactor is the paper's deliberate over-buffering multiplier.
const BloatFactor = 10

// BloatedPackets returns the paper's excessive buffering configuration
// (10x BDP).
func BloatedPackets(bdpPackets int) int { return BloatFactor * bdpPackets }

// MaxQueueingDelay returns the worst-case queueing delay of a buffer of
// the given size in packets draining at rate bits/s with full-sized
// packets — the Delay columns of Table 2.
func MaxQueueingDelay(packets int, rateBps float64) time.Duration {
	if rateBps <= 0 {
		return 0
	}
	sec := float64(packets) * FullPacket * 8 / rateBps
	return time.Duration(sec * float64(time.Second))
}

// LoadAware implements the load-dependent sizing scheme the paper's
// summary suggests: at low-to-moderate utilization larger buffers
// absorb bursts and reduce retransmissions (better WebQoE), while at
// high utilization smaller buffers bound the queueing delay.
// utilization is in [0, 1]; n is the concurrent flow count estimate.
func LoadAware(bdpPackets, n int, utilization float64) int {
	switch {
	case utilization < 0.5:
		return 2 * bdpPackets
	case utilization < 0.85:
		return bdpPackets
	default:
		return StanfordPackets(bdpPackets, n)
	}
}

// Candidates merges a base buffer axis with extra bracket points
// (typically scheme-derived sizes such as the link's BDP) into a
// sorted, deduplicated, strictly positive candidate list — the search
// axis an adaptive recommender bisects over.
func Candidates(base []int, extras ...int) []int {
	seen := make(map[int]bool, len(base)+len(extras))
	out := make([]int, 0, len(base)+len(extras))
	for _, b := range append(append([]int(nil), base...), extras...) {
		if b > 0 && !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return out
}

// NearestIndex returns the index of the option closest to packets by
// size ratio (log distance), so 8 vs 16 and 749 vs 1498 are equally
// "near" — the right metric for buffer sizes, which the paper sweeps
// in powers of two. It returns -1 for an empty option list or a
// non-positive target.
func NearestIndex(packets int, options []int) int {
	if packets <= 0 {
		return -1
	}
	best, bestDist := -1, math.Inf(1)
	for i, opt := range options {
		if opt <= 0 {
			continue
		}
		d := math.Abs(math.Log(float64(opt) / float64(packets)))
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Table2Row is one row of the paper's Table 2: a buffer size and its
// maximum queueing delay per direction/testbed.
type Table2Row struct {
	Packets int
	Delay   time.Duration
	Scheme  string
}

// Access and backbone link rates (Section 5.1).
const (
	AccessUplinkRate   = 1e6   // 1 Mbit/s
	AccessDownlinkRate = 16e6  // 16 Mbit/s
	BackboneRate       = 155e6 // OC3
)

// AccessBufferSizes are the paper's access-testbed buffer
// configurations (powers of two; 256 is the Stanford reference router
// maximum).
var AccessBufferSizes = []int{8, 16, 32, 64, 128, 256}

// BackboneBufferSizes are the paper's backbone configurations: tiny
// (8), Stanford (28), BDP (749), and 10x BDP (7490).
var BackboneBufferSizes = []int{8, 28, 749, 7490}

// AccessUplinkTable2 returns the uplink half of Table 2.
func AccessUplinkTable2() []Table2Row {
	schemes := map[int]string{8: "~BDP", 256: "max"}
	return table2(AccessBufferSizes, AccessUplinkRate, schemes)
}

// AccessDownlinkTable2 returns the downlink half of Table 2.
func AccessDownlinkTable2() []Table2Row {
	schemes := map[int]string{8: "min", 64: "~BDP", 256: "max"}
	return table2(AccessBufferSizes, AccessDownlinkRate, schemes)
}

// BackboneTable2 returns the backbone half of Table 2.
func BackboneTable2() []Table2Row {
	schemes := map[int]string{8: "~TinyBuf", 28: "Stanford", 749: "BDP", 7490: "10 x BDP"}
	return table2(BackboneBufferSizes, BackboneRate, schemes)
}

func table2(sizes []int, rate float64, schemes map[int]string) []Table2Row {
	rows := make([]Table2Row, 0, len(sizes))
	for _, s := range sizes {
		rows = append(rows, Table2Row{
			Packets: s,
			Delay:   MaxQueueingDelay(s, rate),
			Scheme:  schemes[s],
		})
	}
	return rows
}
