package bufferqoe

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// streamSweepSpec is a small grid whose cells are cheap but numerous
// enough to have queued work at cancellation time.
func streamSweepSpec() Sweep {
	return Sweep{
		Scenarios: []Scenario{{Workload: "noBG"}, {Workload: "short-few", Direction: Up}},
		Buffers:   []int{8, 32, 128},
		Probes:    []Probe{{Media: VoIP}},
	}
}

func cellKey(c SweepCell) string {
	return fmt.Sprintf("%s|%s|%d", c.Scenario, c.Probe, c.Buffer)
}

// TestSweepStreamMatchesBatch is the streaming acceptance check: the
// stream and the batch grid must agree bit-for-bit on every cell's
// value, even though the stream yields in completion order on a cold
// parallel session and the batch ran elsewhere.
func TestSweepStreamMatchesBatch(t *testing.T) {
	sw := streamSweepSpec()
	o := sweepOpts()

	batch, err := NewSession().Sweep(sw, o)
	if err != nil {
		t.Fatal(err)
	}

	streamed := map[string]SweepCell{}
	s := NewSession()
	for c, err := range s.SweepStream(context.Background(), sw, o) {
		if err != nil {
			t.Fatal(err)
		}
		streamed[cellKey(c)] = c
	}
	if len(streamed) != len(batch.Cells) {
		t.Fatalf("stream yielded %d cells, batch has %d", len(streamed), len(batch.Cells))
	}
	for _, want := range batch.Cells {
		got, ok := streamed[cellKey(want)]
		if !ok {
			t.Fatalf("stream missing cell %s", cellKey(want))
		}
		if got != want {
			t.Fatalf("stream cell %s = %+v, batch %+v", cellKey(want), got, want)
		}
	}

	// The stream populated the session cache exactly like a batch
	// would: re-sweeping simulates nothing new.
	before := s.Stats()
	again, err := s.Sweep(sw, o)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("batch after stream re-simulated %d cells", after.Misses-before.Misses)
	}
	for i := range again.Cells {
		if again.Cells[i] != batch.Cells[i] {
			t.Fatalf("warm batch cell %d diverged: %+v vs %+v", i, again.Cells[i], batch.Cells[i])
		}
	}
}

// TestSweepStreamProgress: OnProgress fires once per cell with a
// monotone counter, for both the stream and the batch wrapper.
func TestSweepStreamProgress(t *testing.T) {
	sw := streamSweepSpec()
	total := len(sw.Scenarios) * len(sw.Buffers) * len(sw.Probes)
	for _, mode := range []string{"stream", "batch"} {
		var events []Progress
		o := sweepOpts()
		o.OnProgress = func(p Progress) { events = append(events, p) }
		s := NewSession()
		switch mode {
		case "stream":
			for _, err := range s.SweepStream(context.Background(), sw, o) {
				if err != nil {
					t.Fatal(err)
				}
			}
		case "batch":
			if _, err := s.Sweep(sw, o); err != nil {
				t.Fatal(err)
			}
		}
		if len(events) != total {
			t.Fatalf("%s: %d progress events, want %d", mode, len(events), total)
		}
		for i, p := range events {
			if p.Completed != i+1 || p.Total != total {
				t.Fatalf("%s: event %d = %d/%d, want %d/%d", mode, i, p.Completed, p.Total, i+1, total)
			}
			if p.Cell.Scenario == "" || p.Cell.Buffer == 0 {
				t.Fatalf("%s: event %d has no cell: %+v", mode, i, p)
			}
		}
	}
}

// waitForGoroutines polls until the goroutine count settles back to
// (or below) the baseline, tolerating the documented drain window for
// in-flight cells.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC() // flush finished goroutines' stacks
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSweepStreamAbandonHygiene: breaking out of a stream
// mid-iteration leaks no goroutines and leaves the session cache
// consistent — a subsequent identical sweep on the same session is
// bit-identical to a fresh session's.
func TestSweepStreamAbandonHygiene(t *testing.T) {
	sw := streamSweepSpec()
	o := sweepOpts()
	baseline := runtime.NumGoroutine()
	s := NewSession()
	s.SetParallelism(2)
	t.Cleanup(func() { waitForGoroutines(t, baseline) })

	yielded := 0
	for _, err := range s.SweepStream(context.Background(), sw, o) {
		if err != nil {
			t.Fatal(err)
		}
		yielded++
		break // abandon after the first cell
	}
	if yielded != 1 {
		t.Fatalf("yielded %d cells before break", yielded)
	}

	// The abandoned remainder must not poison the cache: the full
	// sweep on this session matches a cold session bit-for-bit.
	warm, err := s.Sweep(sw, o)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSession().Sweep(sw, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Cells {
		if warm.Cells[i] != cold.Cells[i] {
			t.Fatalf("cell %d after abandonment diverged: %+v vs %+v", i, warm.Cells[i], cold.Cells[i])
		}
	}
}

// TestSweepStreamCancellation: canceling the context mid-stream
// surfaces ErrCanceled promptly, counts abandoned cells in Stats, and
// leaks no goroutines.
func TestSweepStreamCancellation(t *testing.T) {
	sw := streamSweepSpec()
	o := sweepOpts()
	baseline := runtime.NumGoroutine()
	s := NewSession()
	s.SetParallelism(1) // guarantee queued cells at cancellation time
	t.Cleanup(func() { waitForGoroutines(t, baseline) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sawCancel bool
	start := time.Now()
	for _, err := range s.SweepStream(ctx, sw, o) {
		if err != nil {
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("stream error = %v, want ErrCanceled", err)
			}
			sawCancel = true
			break
		}
		cancel() // first completed cell: abandon the rest
	}
	if !sawCancel {
		t.Fatal("canceled stream never yielded ErrCanceled")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	if st := s.Stats(); st.Canceled == 0 {
		t.Fatalf("no canceled cells counted: %+v", st)
	}
}

// TestSweepCtxCanceledBeforeStart: a pre-canceled context runs
// nothing at all.
func TestSweepCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession()
	if _, err := s.SweepCtx(ctx, streamSweepSpec(), sweepOpts()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if st := s.Stats(); st.Misses != 0 {
		t.Fatalf("pre-canceled sweep simulated %d cells", st.Misses)
	}
}

// TestRunCtxCancellation: the experiment-runner path (grid runners
// with no ctx plumbing of their own) surfaces cancellation as an
// ordinary ErrCanceled return, and RunAllCtx records it per outcome.
func TestRunCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSession()
	if _, err := s.RunCtx(ctx, "fig7b", probeOpts()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("RunCtx err = %v, want ErrCanceled", err)
	}
	outcomes := s.RunAllCtx(ctx, []string{"fig7a", "fig7b"}, probeOpts())
	for _, oc := range outcomes {
		if !errors.Is(oc.Err, ErrCanceled) {
			t.Fatalf("outcome %s err = %v, want ErrCanceled", oc.ID, oc.Err)
		}
	}
	// Measure* probes observe a WithContext bound the same way.
	if _, err := s.WithContext(ctx).MeasureVoIP(Access, "noBG", Up, 64, probeOpts()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MeasureVoIP err = %v, want ErrCanceled", err)
	}
}

// TestSweepStreamValidationError: an invalid sweep yields its error
// without simulating anything.
func TestSweepStreamValidationError(t *testing.T) {
	s := NewSession()
	sw := Sweep{
		Scenarios: []Scenario{{Workload: "definitely-not-a-scenario"}},
		Buffers:   []int{8},
		Probes:    []Probe{{Media: VoIP}},
	}
	var got error
	for _, err := range s.SweepStream(context.Background(), sw, sweepOpts()) {
		got = err
	}
	if got == nil {
		t.Fatal("invalid sweep streamed without error")
	}
	if st := s.Stats(); st.Misses != 0 {
		t.Fatalf("invalid sweep simulated %d cells", st.Misses)
	}
}
