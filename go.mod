module bufferqoe

go 1.24
