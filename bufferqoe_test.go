package bufferqoe

import (
	"strings"
	"testing"
	"time"
)

func probeOpts() Options {
	return Options{
		Seed:        5,
		Duration:    4 * time.Second,
		Warmup:      2 * time.Second,
		Reps:        1,
		ClipSeconds: 1,
		CDNFlows:    20000,
	}
}

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments", len(ids))
	}
	found := map[string]bool{}
	for _, id := range ids {
		found[id] = true
	}
	for _, want := range []string{"table1", "table2", "fig1a", "fig7b", "fig11", "abl-aqm"} {
		if !found[want] {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("bogus", probeOpts()); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunAllCollectsErrors(t *testing.T) {
	ids := []string{"table2", "bogus", "fig1a", "fig1b"}
	outcomes := RunAll(ids, probeOpts())
	if len(outcomes) != len(ids) {
		t.Fatalf("got %d outcomes for %d ids", len(outcomes), len(ids))
	}
	for i, oc := range outcomes {
		if oc.ID != ids[i] {
			t.Fatalf("outcome %d is %q, want %q (order not preserved)", i, oc.ID, ids[i])
		}
	}
	if outcomes[1].Err == nil {
		t.Fatal("bogus experiment did not record an error")
	}
	for _, i := range []int{0, 2, 3} {
		if outcomes[i].Err != nil {
			t.Fatalf("%s failed: %v", outcomes[i].ID, outcomes[i].Err)
		}
		if outcomes[i].Result == nil || outcomes[i].Result.Text == "" {
			t.Fatalf("%s has no result", outcomes[i].ID)
		}
	}
	// fig1a and fig1b share the CDN population cell.
	if st := Stats(); st.Hits == 0 {
		t.Fatalf("no cache hits across the batch: %+v", st)
	}
}

func TestParallelismControls(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("default parallelism = %d", Parallelism())
	}
}

func TestRunTable2(t *testing.T) {
	res, err := Run("table2", probeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "table2" || !strings.Contains(res.Text, "backbone") {
		t.Fatalf("unexpected result: %+v", res.ID)
	}
}

func TestMeasureVoIPAccess(t *testing.T) {
	r, err := MeasureVoIP(Access, "noBG", Up, 64, probeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.ListenMOS < 3.9 || r.TalkMOS < 3.9 {
		t.Fatalf("idle-line MOS = %+v, want excellent", r)
	}
	if r.ListenRating == "" || r.TalkRating == "" {
		t.Fatal("missing ratings")
	}
}

func TestMeasureVoIPBackbone(t *testing.T) {
	r, err := MeasureVoIP(Backbone, "noBG", "", 749, probeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.ListenMOS < 3.9 {
		t.Fatalf("backbone idle MOS = %v", r.ListenMOS)
	}
}

func TestMeasureVoIPBadDirection(t *testing.T) {
	if _, err := MeasureVoIP(Access, "noBG", "sideways", 64, probeOpts()); err == nil {
		t.Fatal("expected error for bad direction")
	}
}

func TestMeasureWeb(t *testing.T) {
	r, err := MeasureWeb(Access, "noBG", Down, 64, probeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.MedianPLT <= 0 || r.MedianPLT > 2*time.Second {
		t.Fatalf("PLT = %v", r.MedianPLT)
	}
	if r.MOS < 4 {
		t.Fatalf("idle-line web MOS = %v", r.MOS)
	}
}

func TestMeasureVideo(t *testing.T) {
	r, err := MeasureVideo(Backbone, "noBG", "SD", 749, probeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.SSIM < 0.99 {
		t.Fatalf("idle-line SSIM = %v", r.SSIM)
	}
	if _, err := MeasureVideo(Access, "noBG", "4K", 64, probeOpts()); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestScenariosAndBuffers(t *testing.T) {
	if len(Scenarios(Access)) != 5 || len(Scenarios(Backbone)) != 6 {
		t.Fatalf("scenario counts: %d/%d", len(Scenarios(Access)), len(Scenarios(Backbone)))
	}
	if len(BufferSizes(Access)) != 6 || len(BufferSizes(Backbone)) != 4 {
		t.Fatal("buffer sweep sizes wrong")
	}
}

func TestSizingSchemes(t *testing.T) {
	schemes := SizingSchemes(155e6, 60*time.Millisecond, 768)
	if len(schemes) != 4 {
		t.Fatalf("schemes = %d", len(schemes))
	}
	byName := map[string]Scheme{}
	for _, s := range schemes {
		byName[s.Name] = s
	}
	bdp := byName["rule-of-thumb (BDP)"]
	if bdp.Packets < 700 || bdp.Packets > 800 {
		t.Fatalf("BDP packets = %d", bdp.Packets)
	}
	st := byName["stanford (BDP/sqrt(n))"]
	if st.Packets >= bdp.Packets {
		t.Fatal("stanford not smaller than BDP")
	}
	bloat := byName["bloated (10x BDP)"]
	if bloat.MaxDelay < 500*time.Millisecond {
		t.Fatalf("bloat delay = %v", bloat.MaxDelay)
	}
}

func TestResultValueAccessor(t *testing.T) {
	res, err := Run("fig1a", probeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Value(0, "max RTT", "mode (ms)"); v <= 0 {
		t.Fatalf("accessor value = %v", v)
	}
	// Legacy contract: Value forges 0 for unknown coordinates.
	if v := res.Value(99, "x", "y"); v != 0 {
		t.Fatalf("out-of-range grid returned %v", v)
	}
	// Lookup tells the two apart.
	if v, ok := res.Lookup(0, "max RTT", "mode (ms)"); !ok || v <= 0 {
		t.Fatalf("Lookup = (%v, %v), want the real cell", v, ok)
	}
	if _, ok := res.Lookup(99, "x", "y"); ok {
		t.Fatal("Lookup reported an out-of-range cell as present")
	}
}
