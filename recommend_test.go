package bufferqoe

import (
	"context"
	"errors"
	"testing"
)

// TestRecommendMatchesFullGridArgmax is the recommender acceptance
// check: on the paper's access buffer sweep, the ternary search must
// land on the same optimal buffer an exhaustive grid argmax finds,
// while simulating strictly fewer cells (asserted via Session.Stats).
func TestRecommendMatchesFullGridArgmax(t *testing.T) {
	o := sweepOpts()
	sc := Scenario{Workload: "long-many", Direction: Up}
	probes := []Probe{{Media: VoIP}, {Media: Web}}
	buffers := BufferSizes(Access)

	// Exhaustive reference: full grid, argmax of the aggregate score.
	full := NewSession()
	grid, err := full.Sweep(Sweep{Scenarios: []Scenario{sc}, Buffers: buffers, Probes: probes}, o)
	if err != nil {
		t.Fatal(err)
	}
	gridCost := full.Stats().Misses
	bestBuf, bestScore := 0, -1.0
	for _, buf := range buffers {
		var sum float64
		for _, p := range probes {
			c, ok := grid.Cell(sc.Label(), p.Label(), buf)
			if !ok {
				t.Fatalf("grid missing cell %s/%s/%d", sc.Label(), p.Label(), buf)
			}
			sum += cellScore(c)
		}
		if score := sum / float64(len(probes)); score > bestScore {
			bestBuf, bestScore = buf, score
		}
	}

	s := NewSession()
	rec, err := s.Recommend(context.Background(), RecommendSpec{
		Scenario: sc, Probes: probes, Buffers: buffers, Target: MaxAggregateMOS,
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Buffer != bestBuf {
		t.Fatalf("Recommend chose %d (score %.3f), full-grid argmax is %d (score %.3f); tried %v",
			rec.Buffer, rec.Score, bestBuf, bestScore, rec.BuffersTried)
	}
	if rec.Score != bestScore {
		t.Fatalf("Recommend score %.6f != grid score %.6f at the same buffer", rec.Score, bestScore)
	}
	searchCost := s.Stats().Misses
	if searchCost >= gridCost {
		t.Fatalf("search simulated %d cells, full grid %d — no savings", searchCost, gridCost)
	}
	if rec.CellsEvaluated >= rec.GridCells {
		t.Fatalf("CellsEvaluated %d not < GridCells %d", rec.CellsEvaluated, rec.GridCells)
	}
	if rec.GridCells != len(buffers)*len(probes) {
		t.Fatalf("GridCells = %d, want %d", rec.GridCells, len(buffers)*len(probes))
	}
	if len(rec.Cells) != len(probes) {
		t.Fatalf("Cells = %d, want one per probe", len(rec.Cells))
	}
	for i, c := range rec.Cells {
		if c.Buffer != rec.Buffer || c.Probe != probes[i].Label() {
			t.Fatalf("cell %d = %+v, want probe %s at buffer %d", i, c, probes[i].Label(), rec.Buffer)
		}
	}
	if rec.Scheme.Name == "" || rec.Scheme.Packets <= 0 {
		t.Fatalf("no nearest scheme reported: %+v", rec.Scheme)
	}
}

// TestRecommendReusesSessionCache: a sweep after a recommender run on
// the same session re-simulates nothing the search measured — both
// paths submit identical canonical cell specs.
func TestRecommendReusesSessionCache(t *testing.T) {
	o := sweepOpts()
	sc := Scenario{Workload: "long-many", Direction: Up}
	probes := []Probe{{Media: VoIP}}
	s := NewSession()
	rec, err := s.Recommend(context.Background(), RecommendSpec{
		Scenario: sc, Probes: probes, Buffers: BufferSizes(Access), Target: MaxAggregateMOS,
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	grid, err := s.Sweep(Sweep{Scenarios: []Scenario{sc}, Buffers: rec.BuffersTried, Probes: probes}, o)
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("sweep after recommend re-simulated %d cells", after.Misses-before.Misses)
	}
	// And the numbers agree exactly.
	c, ok := grid.Cell(sc.Label(), probes[0].Label(), rec.Buffer)
	if !ok || cellScore(c) != rec.Score {
		t.Fatalf("sweep cell %+v (ok=%v) disagrees with recommendation score %.6f", c, ok, rec.Score)
	}
}

// TestRecommendMinBuffer: on an idle line every buffer satisfies the
// floor, so the binary search must return the smallest candidate
// after evaluating only O(log n) of them.
func TestRecommendMinBuffer(t *testing.T) {
	o := sweepOpts()
	s := NewSession()
	rec, err := s.Recommend(context.Background(), RecommendSpec{
		Scenario: Scenario{Workload: "noBG"},
		Probes:   []Probe{{Media: VoIP}, {Media: Web}},
		Buffers:  BufferSizes(Access),
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Buffer != 8 || !rec.Met {
		t.Fatalf("idle line: buffer %d met=%v, want 8/true (tried %v)", rec.Buffer, rec.Met, rec.BuffersTried)
	}
	if len(rec.BuffersTried) >= len(BufferSizes(Access)) {
		t.Fatalf("binary search evaluated %v — the whole axis", rec.BuffersTried)
	}
}

// TestRecommendUnmetThresholdFallsBack: when no candidate satisfies
// an unreachable floor, the recommendation is flagged unmet and falls
// back to the best evaluated buffer.
func TestRecommendUnmetThresholdFallsBack(t *testing.T) {
	o := sweepOpts()
	rec, err := NewSession().Recommend(context.Background(), RecommendSpec{
		Scenario:  Scenario{Workload: "long-many", Direction: Up},
		Probes:    []Probe{{Media: VoIP}},
		Buffers:   BufferSizes(Access),
		Threshold: 4.9, // unreachable under heavy congestion
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Met {
		t.Fatalf("threshold 4.9 reported met at buffer %d", rec.Buffer)
	}
	if rec.Buffer <= 0 || rec.Score <= 0 {
		t.Fatalf("no fallback recommendation: %+v", rec)
	}
}

// TestRecommendDefaultsBracketBDP: with no explicit axis, the
// candidates are the paper's sweep bracketed with the link's BDP.
func TestRecommendDefaultsBracketBDP(t *testing.T) {
	o := sweepOpts()
	rec, err := NewSession().Recommend(context.Background(), RecommendSpec{
		Scenario: Scenario{Workload: "noBG"},
		Probes:   []Probe{{Media: VoIP}},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's DSL downlink BDP (16 Mbit/s, 50 ms RTT) is ~67
	// packets; the default axis must cover the paper's 8..256 sweep.
	if rec.GridCells < len(BufferSizes(Access)) {
		t.Fatalf("default axis too small: %+v", rec)
	}
}

// TestRecommendValidation: invalid specs fail before simulation.
func TestRecommendValidation(t *testing.T) {
	o := sweepOpts()
	s := NewSession()
	ctx := context.Background()
	cases := []struct {
		name string
		spec RecommendSpec
	}{
		{"no probes", RecommendSpec{Scenario: Scenario{Workload: "noBG"}}},
		{"duplicate probes", RecommendSpec{Scenario: Scenario{Workload: "noBG"},
			Probes: []Probe{{Media: VoIP}, {Media: VoIP}}}},
		{"unknown workload", RecommendSpec{Scenario: Scenario{Workload: "nope"},
			Probes: []Probe{{Media: VoIP}}}},
		{"bad buffer", RecommendSpec{Scenario: Scenario{Workload: "noBG"},
			Probes: []Probe{{Media: VoIP}}, Buffers: []int{0, 8}}},
		{"duplicate buffer", RecommendSpec{Scenario: Scenario{Workload: "noBG"},
			Probes: []Probe{{Media: VoIP}}, Buffers: []int{8, 8}}},
		{"unknown target", RecommendSpec{Scenario: Scenario{Workload: "noBG"},
			Probes: []Probe{{Media: VoIP}}, Target: "fastest"}},
	}
	for _, tc := range cases {
		if _, err := s.Recommend(ctx, tc.spec, o); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	if st := s.Stats(); st.Misses != 0 {
		t.Fatalf("invalid specs simulated %d cells", st.Misses)
	}
}

// TestRecommendCancellation: a canceled context aborts the search
// with ErrCanceled.
func TestRecommendCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewSession().Recommend(ctx, RecommendSpec{
		Scenario: Scenario{Workload: "noBG"},
		Probes:   []Probe{{Media: VoIP}},
	}, sweepOpts())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
