package bufferqoe_test

import (
	"fmt"
	"time"

	"bufferqoe"
)

// ExampleSession_Sweep sweeps one probe over the paper's DSL line and
// a custom gigabit fiber link — the composable-scenario counterpart
// of the fixed Figure 7b grid.
func ExampleSession_Sweep() {
	fiber := bufferqoe.FiberLink() // symmetric 1 Gbit/s, non-paper link
	sweep := bufferqoe.Sweep{
		Scenarios: []bufferqoe.Scenario{
			{Name: "dsl", Workload: "short-few", Direction: bufferqoe.Up},
			{Name: "fiber", Link: &fiber, Workload: "short-few", Direction: bufferqoe.Up},
		},
		Buffers: []int{8, 64},
		Probes:  []bufferqoe.Probe{{Media: bufferqoe.VoIP}},
	}

	s := bufferqoe.NewSession()
	grid, err := s.Sweep(sweep, bufferqoe.Options{Seed: 1, Warmup: 2 * time.Second, Reps: 1})
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Printf("%d scenarios x %d probes x %d buffers = %d cells\n",
		len(grid.Scenarios), len(grid.Probes), len(grid.Buffers), len(grid.Cells))
	dsl, _ := grid.Cell("dsl", "voip", 64)
	fib, _ := grid.Cell("fiber", "voip", 64)
	fmt.Printf("fiber at least matches DSL under upload congestion: %v\n", fib.MOS >= dsl.MOS-0.01)
	// Output:
	// 2 scenarios x 1 probes x 2 buffers = 4 cells
	// fiber at least matches DSL under upload congestion: true
}
