package bufferqoe_test

import (
	"context"
	"fmt"
	"time"

	"bufferqoe"
)

// ExampleSession_Sweep sweeps one probe over the paper's DSL line and
// a custom gigabit fiber link — the composable-scenario counterpart
// of the fixed Figure 7b grid.
func ExampleSession_Sweep() {
	fiber := bufferqoe.FiberLink() // symmetric 1 Gbit/s, non-paper link
	sweep := bufferqoe.Sweep{
		Scenarios: []bufferqoe.Scenario{
			{Name: "dsl", Workload: "short-few", Direction: bufferqoe.Up},
			{Name: "fiber", Link: &fiber, Workload: "short-few", Direction: bufferqoe.Up},
		},
		Buffers: []int{8, 64},
		Probes:  []bufferqoe.Probe{{Media: bufferqoe.VoIP}},
	}

	s := bufferqoe.NewSession()
	grid, err := s.Sweep(sweep, bufferqoe.Options{Seed: 1, Warmup: 2 * time.Second, Reps: 1})
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Printf("%d scenarios x %d probes x %d buffers = %d cells\n",
		len(grid.Scenarios), len(grid.Probes), len(grid.Buffers), len(grid.Cells))
	dsl, _ := grid.Cell("dsl", "voip", 64)
	fib, _ := grid.Cell("fiber", "voip", 64)
	fmt.Printf("fiber at least matches DSL under upload congestion: %v\n", fib.MOS >= dsl.MOS-0.01)
	// Output:
	// 2 scenarios x 1 probes x 2 buffers = 4 cells
	// fiber at least matches DSL under upload congestion: true
}

// ExampleSession_SweepStream consumes cells as workers finish them —
// the same values the batch Sweep returns, incrementally.
func ExampleSession_SweepStream() {
	sweep := bufferqoe.Sweep{
		Scenarios: []bufferqoe.Scenario{{Workload: "noBG"}},
		Buffers:   []int{8, 64},
		Probes:    []bufferqoe.Probe{{Media: bufferqoe.VoIP}},
	}
	s := bufferqoe.NewSession()
	good := 0
	for cell, err := range s.SweepStream(context.Background(), sweep, bufferqoe.Options{Seed: 1, Warmup: 2 * time.Second, Reps: 1}) {
		if err != nil {
			fmt.Println(err)
			return
		}
		if cell.MOS >= 4 {
			good++
		}
	}
	fmt.Printf("%d of 2 idle-line cells score excellent\n", good)
	// Output:
	// 2 of 2 idle-line cells score excellent
}

// ExampleSession_Recommend asks the sizing question directly: the
// smallest buffer keeping every probe satisfied, found by search
// instead of an exhaustive sweep.
func ExampleSession_Recommend() {
	s := bufferqoe.NewSession()
	rec, err := s.Recommend(context.Background(), bufferqoe.RecommendSpec{
		Scenario: bufferqoe.Scenario{Workload: "noBG"},
		Probes:   []bufferqoe.Probe{{Media: bufferqoe.VoIP}, {Media: bufferqoe.Web}},
		Buffers:  []int{8, 16, 32, 64, 128, 256},
	}, bufferqoe.Options{Seed: 1, Warmup: 2 * time.Second, Reps: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("buffer: %d packets, threshold met: %v\n", rec.Buffer, rec.Met)
	fmt.Printf("evaluated %d of %d grid cells\n", rec.CellsEvaluated, rec.GridCells)
	// Output:
	// buffer: 8 packets, threshold met: true
	// evaluated 4 of 12 grid cells
}

// ExampleParseMix shows the composable-workload grammar and its
// canonicalization: spelling never matters, and preset-equal mixes
// are the preset.
func ExampleParseMix() {
	w, err := bufferqoe.ParseMix("down:web=16x3/1.5s;up:long=2")
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Encoding()) // canonical: loops form, sorted, up first
	fmt.Println(w)

	// A mix equal to a Table 1 preset labels as the preset and shares
	// its cache cells when swept.
	preset := &bufferqoe.Workload{Up: []bufferqoe.Traffic{bufferqoe.BulkFlows(8)}}
	fmt.Println(bufferqoe.Scenario{Mix: preset}.Label())
	// Output:
	// up:long=2;down:web=48/1.5s
	// up: 2 long-lived flow(s); down: 48 web loop(s), think 1.5s
	// access/long-many/up
}
