// wild_cdn reproduces the paper's Section 3 "buffering in the wild"
// study on the synthetic CDN population: per-flow smoothed-RTT
// statistics are reduced to queueing-delay estimates (max-min sRTT),
// split by access technology — the measurement that frames bufferbloat
// as real but rare.
package main

import (
	"fmt"
	"time"

	"bufferqoe"
)

func main() {
	opt := bufferqoe.Options{
		Seed:     11,
		CDNFlows: 400000,
		Duration: 5 * time.Second,
		Warmup:   time.Second,
		Reps:     1,
	}

	fmt.Println("Buffering in the wild (paper Section 3, Figure 1)")
	fmt.Println()

	rtts, err := bufferqoe.Run("fig1a", opt)
	check(err)
	fmt.Println(rtts.Text)

	qd, err := bufferqoe.Run("fig1c", opt)
	check(err)
	fmt.Println(qd.Text)

	fmt.Println("The calibration targets from the paper's 430M-connection")
	fmt.Println("dataset: ~80% of flows see <100 ms of delay variation;")
	fmt.Println("only ~2.8% exceed 500 ms and ~1% exceed 1 s — bufferbloat")
	fmt.Println("can happen, but mostly does not.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
