// Command wifi_bbr re-asks the paper's buffer sizing question on the
// link type its testbeds deliberately excluded (§5.1): an 802.11
// wireless last hop. The wired BDP rule of thumb (Table 2), applied
// to the WLAN's nominal 65 Mbit/s PHY rate and 34 ms base RTT, asks
// for ~185 packets of buffer. The grid below shows why that number is
// wrong on WiFi: under CSMA/CA contention the effective service rate
// is far below the PHY rate, and with paced model-based congestion
// control (BBR) the sender never needs a standing queue at all — the
// BDP-sized buffer only adds delay, while a tiny buffer concedes
// nothing. The wired column runs the same rates with CUBIC, where the
// BDP buffer genuinely pays.
package main

import (
	"fmt"
	"log"
	"time"

	"bufferqoe"
)

func main() {
	wifi := bufferqoe.WifiLink(8) // 8 stations contending for the medium
	wired := wifi
	wired.Wifi = bufferqoe.Wifi{} // same rates and delays, wired service

	sweep := bufferqoe.Sweep{
		Scenarios: []bufferqoe.Scenario{
			{Name: "wired-cubic", Link: &wired, Workload: "long-many", Direction: bufferqoe.Down},
			{Name: "wifi8-cubic", Link: &wifi, Workload: "long-many", Direction: bufferqoe.Down},
			{Name: "wifi8-bbr", Link: &wifi, Workload: "long-many", Direction: bufferqoe.Down,
				CC: bufferqoe.BBR},
		},
		// 16 packets vs the wired-BDP recommendation for this link.
		Buffers: []int{16, 185},
		Probes: []bufferqoe.Probe{
			{Media: bufferqoe.VoIP},
			{Media: bufferqoe.Web},
		},
	}

	s := bufferqoe.NewSession()
	start := time.Now()
	grid, err := s.Sweep(sweep, bufferqoe.Options{
		Seed: 11, Duration: 6 * time.Second, Warmup: 2 * time.Second, Reps: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(grid.Text())

	st := s.Stats()
	fmt.Printf("\n%d cells (%d simulated) on %d workers in %.1fs\n",
		len(grid.Cells), st.Misses, st.Workers, time.Since(start).Seconds())
	fmt.Println("\nReading the grid: on wired-cubic the 185-packet buffer wins web PLT —")
	fmt.Println("the paper's BDP rule pays. Contention alone (wifi8-cubic) already")
	fmt.Println("erases that win, and with BBR (wifi8-bbr) the BDP buffer is strictly")
	fmt.Println("worse: wired BDP sizing over-buffers a contended WLAN.")
}
