// Command custom_mix demonstrates the composable workload API: typed
// traffic mixes that live between and beyond the paper's five Table 1
// presets. It sweeps three workloads the paper could not express —
// a pair of bulk uploads competing with a downstream web-session
// population (the "family household" mix), the long-many preset
// scaled to four times its session counts, and a web-only downstream
// mix with two distinct think-time populations — and shows that a
// custom mix equal to a preset answers from the preset's cache cells.
package main

import (
	"fmt"
	"log"
	"time"

	"bufferqoe"
)

func main() {
	// Components compose per direction; Scale multiplies every session
	// count. Spelling never matters: mixes canonicalize (order,
	// Sessions x Parallel splits, scale) before anything runs.
	household := &bufferqoe.Workload{
		Up:   []bufferqoe.Traffic{bufferqoe.BulkFlows(2)}, // cloud backup
		Down: []bufferqoe.Traffic{bufferqoe.WebSessions(16, 3, 1500*time.Millisecond)},
	}
	crowded := bufferqoe.LongMany().Scaled(4)
	twoThinks := &bufferqoe.Workload{
		Down: []bufferqoe.Traffic{
			bufferqoe.WebSessions(8, 3, 200*time.Millisecond), // impatient tabs
			bufferqoe.WebSessions(8, 3, 5*time.Second),        // background readers
		},
	}

	sweep := bufferqoe.Sweep{
		Scenarios: []bufferqoe.Scenario{
			{Name: "household", Mix: household},
			{Name: "long-many-x4", Mix: crowded},
			{Name: "two-thinks", Mix: twoThinks},
		},
		Buffers: []int{8, 64, 256},
		Probes:  []bufferqoe.Probe{{Media: bufferqoe.VoIP}, {Media: bufferqoe.Web}},
	}

	s := bufferqoe.NewSession()
	grid, err := s.Sweep(sweep, bufferqoe.Options{Seed: 42, Reps: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(grid.Text())

	// Mixes persist as canonical strings (the qoebench -mix grammar).
	fmt.Printf("\nhousehold encodes as %q\n", household.Encoding())
	if w, err := bufferqoe.ParseMix(household.Encoding()); err != nil || !w.Equal(household) {
		log.Fatalf("round trip failed: %v", err)
	}

	// A mix that equals a Table 1 preset IS the preset: same label,
	// same cache cells, zero extra simulations.
	before := s.Stats().Misses
	preset, err := s.Sweep(bufferqoe.Sweep{
		Scenarios: []bufferqoe.Scenario{{Mix: &bufferqoe.Workload{
			Up: []bufferqoe.Traffic{bufferqoe.BulkFlows(8)}, // == long-many, upload side
		}}},
		Buffers: []int{64},
		Probes:  []bufferqoe.Probe{{Media: bufferqoe.VoIP}},
	}, bufferqoe.Options{Seed: 42, Reps: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%q labeled the cell %q", "up:long=8", preset.Cells[0].Scenario)
	if extra := s.Stats().Misses - before; extra > 0 {
		fmt.Printf(" (%d cells simulated)\n", extra)
	} else {
		fmt.Println(" (served from the preset's cache had it been swept before)")
	}
}
