// voip_access sweeps the paper's access-testbed buffer sizes for a
// VoIP call under upload congestion — a miniature of Figure 7b,
// showing how the talk and listen directions degrade differently.
package main

import (
	"fmt"
	"time"

	"bufferqoe"
)

func main() {
	opt := bufferqoe.Options{
		Seed:     7,
		Reps:     2,
		Duration: 10 * time.Second,
		Warmup:   5 * time.Second,
	}
	fmt.Println("VoIP vs modem buffer size under upstream long-flow congestion")
	fmt.Println("(paper Figure 7b, long-many row)")
	fmt.Println()
	fmt.Printf("%-8s  %-22s  %-22s\n", "buffer", "user talks", "user listens")
	for _, buf := range bufferqoe.BufferSizes(bufferqoe.Access) {
		r, err := bufferqoe.MeasureVoIP(bufferqoe.Access, "long-many", bufferqoe.Up, buf, opt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8d  MOS %.1f (%-13.13s)  MOS %.1f (%-13.13s)\n",
			buf, r.TalkMOS, r.TalkRating, r.ListenMOS, r.ListenRating)
	}
	fmt.Println()
	fmt.Println("Talk rides the congested uplink (loss + delay); listen is clean")
	fmt.Println("on the wire but shares the conversational delay impairment.")
}
