// Quickstart: one VoIP call on the simulated DSL access network, with
// and without upload congestion, at two modem buffer sizes — the
// paper's headline phenomenon in a dozen lines.
package main

import (
	"fmt"
	"time"

	"bufferqoe"
)

func main() {
	opt := bufferqoe.Options{
		Seed:     1,
		Reps:     1,
		Duration: 10 * time.Second,
		Warmup:   4 * time.Second,
	}

	fmt.Println("VoIP on a 1 Mbit/s-up / 16 Mbit/s-down DSL line")
	fmt.Println()

	idle, err := bufferqoe.MeasureVoIP(bufferqoe.Access, "noBG", bufferqoe.Up, 256, opt)
	check(err)
	fmt.Printf("idle line, 256-pkt buffer:      talk MOS %.1f (%s)\n", idle.TalkMOS, idle.TalkRating)

	bloat, err := bufferqoe.MeasureVoIP(bufferqoe.Access, "long-many", bufferqoe.Up, 256, opt)
	check(err)
	fmt.Printf("8 uploads, 256-pkt buffer:      talk MOS %.1f (%s)\n", bloat.TalkMOS, bloat.TalkRating)

	small, err := bufferqoe.MeasureVoIP(bufferqoe.Access, "long-many", bufferqoe.Up, 8, opt)
	check(err)
	fmt.Printf("8 uploads, 8-pkt buffer:        talk MOS %.1f (%s)\n", small.TalkMOS, small.TalkRating)

	fmt.Println()
	fmt.Println("Bufferbloat needs BOTH an oversized buffer AND sustained")
	fmt.Println("congestion; fixing either recovers the call (IMC'14, §7).")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
