// Command scenario_sweep demonstrates the composable scenario API on
// three networks the paper never measured: a symmetric gigabit fiber
// line, an LTE-like jittery access link, and the paper's DSL line
// rescued by CoDel. Each is loaded with the same Table 1 workload and
// swept across buffer sizes with VoIP, web, and video probes — the
// kind of question ("how should I size MY buffers?") the paper's
// method is built to answer, beyond its two testbeds.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bufferqoe"
)

func main() {
	fiber := bufferqoe.FiberLink()
	lte := bufferqoe.LTELink()

	sweep := bufferqoe.Sweep{
		Scenarios: []bufferqoe.Scenario{
			{Name: "fiber-1G", Link: &fiber, Workload: "short-many", Direction: bufferqoe.Bidir},
			{Name: "lte-jittery", Link: &lte, Workload: "short-many", Direction: bufferqoe.Bidir,
				Jitter: 8 * time.Millisecond},
			{Name: "dsl-droptail", Workload: "long-many", Direction: bufferqoe.Up},
			{Name: "dsl-codel", Workload: "long-many", Direction: bufferqoe.Up,
				AQM: bufferqoe.CoDel},
		},
		Buffers: []int{8, 64, 256},
		Probes: []bufferqoe.Probe{
			{Media: bufferqoe.VoIP},
			{Media: bufferqoe.Web},
			{Media: bufferqoe.Video, Profile: "SD"},
		},
	}

	s := bufferqoe.NewSession()
	start := time.Now()
	grid, err := s.Sweep(sweep, bufferqoe.Options{Seed: 42, Reps: 1, ClipSeconds: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(grid.Text())
	st := s.Stats()
	fmt.Printf("\n%d cells (%d simulated, %d cache hits) on %d workers in %.1fs\n",
		len(grid.Cells), st.Misses, st.Hits, st.Workers, time.Since(start).Seconds())

	// The same grid, machine-readable (pipe to jq or a dashboard).
	if len(os.Args) > 1 && os.Args[1] == "-json" {
		raw, err := grid.JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(raw)
		fmt.Println()
	}
}
