// Command recommend demonstrates the QoE-driven adaptive buffer
// recommender: instead of sweeping every (buffer, probe) cell the way
// the paper's grids do, it searches the buffer axis for a target —
// here both of the supported targets, on the paper's DSL line under
// heavy upload congestion — and reports how much of the exhaustive
// grid the search skipped. A deadline and a progress hook show the
// serving-grade controls: the run is cancellable at any point and
// observable while it executes.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"bufferqoe"
)

func main() {
	// Bound the whole search by a wall-clock deadline. If it expires,
	// queued cells are abandoned (in-flight ones drain into the session
	// cache) and Recommend returns bufferqoe.ErrCanceled — a rerun
	// resumes from whatever the cache already holds.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	opt := bufferqoe.Options{Seed: 42, Reps: 1, ClipSeconds: 2}
	opt.OnProgress = func(p bufferqoe.Progress) {
		fmt.Fprintf(os.Stderr, "  cell %d/%d: %s/%s@%d -> %s\n",
			p.Completed, p.Total, p.Cell.Scenario, p.Cell.Probe, p.Cell.Buffer, p.Cell.Rating)
	}

	s := bufferqoe.NewSession()
	scenario := bufferqoe.Scenario{Workload: "long-many", Direction: bufferqoe.Up}
	probes := []bufferqoe.Probe{{Media: bufferqoe.VoIP}, {Media: bufferqoe.Web}}

	for _, target := range []bufferqoe.Target{
		bufferqoe.MinBufferMeetingMOS,
		bufferqoe.MaxAggregateMOS,
	} {
		rec, err := s.Recommend(ctx, bufferqoe.RecommendSpec{
			Scenario: scenario,
			Probes:   probes,
			Target:   target,
			// Buffers left empty: the paper's access sweep bracketed
			// with the DSL link's BDP.
		}, opt)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n== target %s ==\n", target)
		fmt.Printf("recommended buffer: %d packets (aggregate MOS %.2f, threshold met: %v)\n",
			rec.Buffer, rec.Score, rec.Met)
		for _, c := range rec.Cells {
			fmt.Printf("  %-6s %-7s", c.Probe, c.Rating)
			if c.TalkMOS > 0 {
				fmt.Printf(" (talk: %s)", c.TalkRating)
			}
			fmt.Println()
		}
		fmt.Printf("search cost: %d of %d grid cells (buffers tried: %v)\n",
			rec.CellsEvaluated, rec.GridCells, rec.BuffersTried)
		fmt.Printf("nearest paper scheme: %s at %d packets (max queueing delay %s)\n",
			rec.Scheme.Name, rec.Scheme.Packets, rec.Scheme.MaxDelay)
	}

	// The searches above share one session: the second target's
	// evaluations hit the cache wherever the first already measured a
	// buffer, and a full Sweep afterwards would re-simulate nothing
	// the searches visited.
	st := s.Stats()
	fmt.Printf("\nsession totals: %d cells simulated, %d cache hits\n", st.Misses, st.Hits)
}
