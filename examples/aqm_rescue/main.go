// aqm_rescue asks the question the bufferbloat debate raised against
// this paper's drop-tail testbeds: if the home-router buffer is
// bloated AND sustainably filled (the one regime the paper found QoE
// to collapse in), how much does swapping the queue discipline —
// CoDel, RED, ARED, PIE, FQ-CoDel — win back, and what does flow
// isolation add for a thin web flow?
package main

import (
	"fmt"
	"time"

	"bufferqoe"
)

func main() {
	opt := bufferqoe.Options{
		Seed:     3,
		Reps:     2,
		Duration: 10 * time.Second,
		Warmup:   5 * time.Second,
	}

	fmt.Println("Rescuing a bloated 256-packet uplink with AQM")
	fmt.Println("(worst case of Figure 7b: 8 concurrent uploads)")
	fmt.Println()

	aqm, err := bufferqoe.Run("abl-aqm", opt)
	check(err)
	fmt.Println(aqm.Text)

	fmt.Println("The same uplink as seen by a web fetch (thin TCP flow")
	fmt.Println("competing with the bulk uploads):")
	fmt.Println()

	web, err := bufferqoe.Run("ext-fqcodel-web", opt)
	check(err)
	fmt.Println(web.Text)

	fmt.Println("AQM bounds the standing queue (delay falls from seconds to")
	fmt.Println("tens of ms); FQ-CoDel additionally keeps the thin flow from")
	fmt.Println("queueing behind the bulk flows at all. Both postdate the")
	fmt.Println("paper — its point stands: workload decides, but the queue")
	fmt.Println("discipline decides how gracefully.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
