// iptv_backbone streams the paper's SD and HD IPTV profiles across the
// backbone load ladder at BDP buffers — a miniature of Figure 9b,
// showing that available bandwidth, not buffer size, decides video
// quality.
package main

import (
	"fmt"
	"time"

	"bufferqoe"
)

func main() {
	opt := bufferqoe.Options{
		Seed:        3,
		Reps:        1,
		ClipSeconds: 2,
		Warmup:      4 * time.Second,
	}
	fmt.Println("RTP/IPTV video on the OC3 backbone, BDP (749-pkt) buffers")
	fmt.Println("(paper Figure 9b)")
	fmt.Println()
	fmt.Printf("%-16s  %-20s  %-20s\n", "workload", "SD (4 Mbit/s)", "HD (8 Mbit/s)")
	for _, sc := range []string{"noBG", "short-low", "short-medium", "short-high", "long"} {
		sd, err := bufferqoe.MeasureVideo(bufferqoe.Backbone, sc, "SD", 749, opt)
		check(err)
		hd, err := bufferqoe.MeasureVideo(bufferqoe.Backbone, sc, "HD", 749, opt)
		check(err)
		fmt.Printf("%-16s  SSIM %.2f (%-9.9s)  SSIM %.2f (%-9.9s)\n",
			sc, sd.SSIM, sd.Rating, hd.SSIM, hd.Rating)
	}
	fmt.Println()
	fmt.Println("Quality is roughly binary in available capacity (IMC'14 §8.4).")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
