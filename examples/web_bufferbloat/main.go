// web_bufferbloat sweeps buffer sizes for web browsing during a
// long-lived upload — a miniature of Figure 10b's long-few row, and
// the paper's cleanest demonstration that QoS and QoE are different
// quantities: the page load time varies by an order of magnitude
// while the opinion score barely moves once it is bad.
package main

import (
	"fmt"
	"time"

	"bufferqoe"
)

func main() {
	opt := bufferqoe.Options{
		Seed:     11,
		Reps:     2,
		Duration: 10 * time.Second,
		Warmup:   5 * time.Second,
	}
	fmt.Println("Web page load during one long-lived upload (Figure 10b, long-few)")
	fmt.Println()
	fmt.Printf("%-8s  %-12s  %s\n", "buffer", "median PLT", "G.1030 QoE")
	for _, buf := range bufferqoe.BufferSizes(bufferqoe.Access) {
		r, err := bufferqoe.MeasureWeb(bufferqoe.Access, "long-few", bufferqoe.Up, buf, opt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8d  %-12v  MOS %.1f (%s)\n",
			buf, r.MedianPLT.Round(10*time.Millisecond), r.MOS, r.Rating)
	}
	fmt.Println()
	fmt.Println("A 2x PLT improvement that stays above ~6s is invisible in QoE:")
	fmt.Println("QoS gains do not necessarily translate (IMC'14 §9.4).")
}
