package bufferqoe

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestMixEqualPresetSharesCellsBitIdentically is the tentpole
// acceptance check: a custom Workload mix that equals a Table 1
// preset under some congestion direction must produce byte-identical
// SweepCell values AND answer from the preset's cache entries — one
// simulation serving both spellings.
func TestMixEqualPresetSharesCellsBitIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates cells")
	}
	s := NewSession()
	o := sweepOpts()
	buffers := []int{8, 64}
	probes := []Probe{{Media: VoIP}, {Media: Web}}

	preset := Sweep{
		Scenarios: []Scenario{{Workload: "long-many", Direction: Up}},
		Buffers:   buffers, Probes: probes,
	}
	pg, err := s.Sweep(preset, o)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses == 0 {
		t.Fatal("preset sweep simulated nothing")
	}

	// Three spellings of the same traffic: long-many restricted to the
	// upload direction is 8 infinite upstream flows.
	for name, mix := range map[string]*Workload{
		"plain":     {Up: []Traffic{BulkFlows(8)}},
		"split":     {Up: []Traffic{BulkFlows(3), BulkFlows(5)}},
		"parallel":  {Up: []Traffic{{Sessions: 2, Parallel: 4, Infinite: true}}},
		"scaled":    {Up: []Traffic{BulkFlows(2)}, Scale: 4},
		"preset-up": {Up: LongMany().Up},
	} {
		mg, err := s.Sweep(Sweep{
			Scenarios: []Scenario{{Mix: mix}},
			Buffers:   buffers, Probes: probes,
		}, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(pg.Cells, mg.Cells) {
			t.Fatalf("%s: mix cells differ from preset cells:\npreset: %+v\nmix:    %+v", name, pg.Cells, mg.Cells)
		}
		pj, _ := pg.JSON()
		mj, _ := mg.JSON()
		if !bytes.Equal(pj, mj) {
			t.Fatalf("%s: mix grid JSON differs from preset grid JSON", name)
		}
	}
	// No spelling may have simulated anything new: every mix answered
	// from the preset's cache entries.
	if after := s.Stats(); after.Misses != st.Misses {
		t.Fatalf("mix spellings simulated %d new cells, want 0 (cache sharing broken)", after.Misses-st.Misses)
	}
}

// TestCustomMixRunsAndCaches covers a genuinely custom mix: it must
// simulate (no preset collision), reuse its own cells across calls,
// and stay CRN-paired across the buffer axis.
func TestCustomMixRunsAndCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates cells")
	}
	s := NewSession()
	o := sweepOpts()
	mix := &Workload{
		Up:   []Traffic{BulkFlows(2)},
		Down: []Traffic{WebSessions(16, 3, 1500*time.Millisecond)},
	}
	sw := Sweep{Scenarios: []Scenario{{Mix: mix}}, Buffers: []int{8, 64}, Probes: []Probe{{Media: VoIP}}}
	g1, err := s.Sweep(sw, o)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 2 {
		t.Fatalf("custom mix simulated %d cells, want 2", st.Misses)
	}
	// Repeating the sweep — and a component-order permutation of the
	// same mix — must be pure cache hits with identical cells.
	perm := &Workload{
		Up:   []Traffic{{Sessions: 1, Parallel: 2, Infinite: true}},
		Down: []Traffic{WebSessions(48, 1, 1500*time.Millisecond)},
	}
	g2, err := s.Sweep(Sweep{Scenarios: []Scenario{{Mix: perm}}, Buffers: []int{8, 64}, Probes: []Probe{{Media: VoIP}}}, o)
	if err != nil {
		t.Fatal(err)
	}
	if after := s.Stats(); after.Misses != st.Misses {
		t.Fatalf("equivalent mix re-simulated cells (misses %d -> %d)", st.Misses, after.Misses)
	}
	if !reflect.DeepEqual(g1.Cells, g2.Cells) {
		t.Fatalf("equivalent mixes disagree:\n%+v\n%+v", g1.Cells, g2.Cells)
	}
}

func TestWorkloadLabels(t *testing.T) {
	for _, tc := range []struct {
		sc   Scenario
		want string
	}{
		{Scenario{Mix: &Workload{Up: []Traffic{BulkFlows(8)}}}, "access/long-many/up"},
		{Scenario{Mix: &Workload{Down: []Traffic{BulkFlows(64)}}}, "access/long-many/down"},
		{Scenario{Mix: LongMany()}, "access/long-many/bidir"},
		{Scenario{Mix: &Workload{}}, "access/noBG"},
		{Scenario{Network: Backbone, Mix: BackboneLong()}, "backbone/long"},
		{Scenario{Mix: &Workload{Up: []Traffic{BulkFlows(2)}}}, "access/mix(up:long=2)"},
		{
			Scenario{Mix: &Workload{Down: []Traffic{BulkFlows(1), WebSessions(4, 2, time.Second)}}},
			"access/mix(down:long=1,web=8/1s)",
		},
		{Scenario{Workload: "long-many", Direction: Up, BufferUp: 256}, "access/long-many/up+bufup=256"},
	} {
		if got := tc.sc.Label(); got != tc.want {
			t.Errorf("Label() = %q, want %q", got, tc.want)
		}
	}
	if l := LongMany().Label(); l != "long-many" {
		t.Errorf("LongMany().Label() = %q", l)
	}
	if l := (&Workload{Up: []Traffic{BulkFlows(2)}}).Label(); l != "mix(up:long=2)" {
		t.Errorf("custom label = %q", l)
	}
	// Scaling a preset is no longer the preset.
	if l := LongMany().Scaled(2).Label(); l != "mix(up:long=16;down:long=128)" {
		t.Errorf("scaled label = %q", l)
	}
	// Scaled(0) is zero traffic, not "unscaled"; negative scales fail
	// validation instead of silently running.
	if w := LongMany().Scaled(0); !w.Equal(&Workload{}) {
		t.Errorf("Scaled(0) = %v, want the empty workload", w)
	}
	if err := LongMany().Scaled(-1).Validate(); err == nil {
		t.Error("Scaled(-1) validated, want error")
	}
	// A mix whose loop count would overflow must be rejected, not run
	// as a mangled population (reachable via qoebench -mix).
	if err := (&Workload{Up: []Traffic{{Sessions: 1 << 62, Parallel: 4, Infinite: true}}}).Validate(); err == nil {
		t.Error("overflowing mix validated, want error")
	}
}

func TestWorkloadValidation(t *testing.T) {
	p := Probe{Media: VoIP}
	for name, sc := range map[string]Scenario{
		"both workload and mix": {Workload: "long-many", Mix: LongFew()},
		"mix with direction":    {Mix: LongFew(), Direction: Up},
		"backbone upstream mix": {Network: Backbone, Mix: &Workload{Up: []Traffic{BulkFlows(2)}}},
		"negative sessions":     {Mix: &Workload{Up: []Traffic{BulkFlows(-1)}}},
		"negative think":        {Mix: &Workload{Down: []Traffic{{Sessions: 1, Think: -time.Second}}}},
		"negative scale":        {Mix: &Workload{Down: []Traffic{BulkFlows(1)}, Scale: -2}},
		"runaway mix":           {Mix: &Workload{Down: []Traffic{WebSessions(1<<20, 4, time.Second)}}},
		"bufup on backbone":     {Network: Backbone, Workload: "long", BufferUp: 8},
		"negative bufup":        {Workload: "long-many", BufferUp: -1},
	} {
		if err := sc.Validate(p); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
	// Valid corners: empty mix, backbone downstream mix, bufup on access.
	for name, sc := range map[string]Scenario{
		"empty mix":              {Mix: &Workload{}},
		"backbone down mix":      {Network: Backbone, Mix: &Workload{Down: []Traffic{BulkFlows(4)}}},
		"bufup on access":        {Workload: "long-many", Direction: Bidir, BufferUp: 256},
		"mix with custom link":   {Link: &Link{UpRate: 1e9}, Mix: &Workload{Up: []Traffic{BulkFlows(2)}}},
		"mix with aqm and bufup": {Mix: LongFew(), AQM: CoDel, BufferUp: 16},
	} {
		if err := sc.Validate(p); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseMix(t *testing.T) {
	w, err := ParseMix("up:long=2;down:web=16x3/1.5s")
	if err != nil {
		t.Fatal(err)
	}
	want := &Workload{
		Up:   []Traffic{BulkFlows(2)},
		Down: []Traffic{WebSessions(16, 3, 1500*time.Millisecond)},
	}
	if !w.Equal(want) {
		t.Fatalf("parsed %+v, want equivalent of %+v", w, want)
	}
	if enc := w.Encoding(); enc != "up:long=2;down:web=48/1.5s" {
		t.Fatalf("encoding = %q", enc)
	}
	// Scale, multiple components, and the noBG literal.
	w, err = ParseMix("down:long=4,web=8/1s;scale=2")
	if err != nil {
		t.Fatal(err)
	}
	if enc := w.Encoding(); enc != "down:long=8,web=16/1s" {
		t.Fatalf("scaled encoding = %q", enc)
	}
	if w, err := ParseMix("noBG"); err != nil || !w.Equal(&Workload{}) {
		t.Fatalf("noBG literal: %+v, %v", w, err)
	}
	for _, bad := range []string{
		"", "up", "sideways:long=2", "up:long", "up:bulk=3", "up:web=3",
		"up:web=3/fast", "up:long=x", "up:long=2x", "scale=0", "scale=1;scale=2",
		"up:web=-1/1s", "up:long=3x-2",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted, want error", bad)
		}
	}
}

// FuzzParseMix fuzzes the qoebench -mix grammar: the parser must
// never panic, and anything it accepts that also validates must
// round-trip through the canonical encoding to an equivalent mix.
func FuzzParseMix(f *testing.F) {
	for _, seed := range []string{
		"up:long=2;down:web=16x3/1.5s",
		"down:long=64",
		"up:long=8;down:long=64;scale=2",
		"down:long=4,web=8/1s",
		"noBG",
		"up:web=1x8/200ms;down:web=16x3/1.5s",
		"scale=3;up:long=1",
		"up:long=0;down:web=0/0s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		w, err := ParseMix(s)
		if err != nil {
			return
		}
		if err := w.Validate(); err != nil {
			return
		}
		enc := w.Encoding()
		w2, err := ParseMix(enc)
		if err != nil {
			t.Fatalf("canonical encoding %q of %q does not re-parse: %v", enc, s, err)
		}
		if !w.Equal(w2) {
			t.Fatalf("round trip of %q via %q changed the mix", s, enc)
		}
		if w2.Encoding() != enc {
			t.Fatalf("encoding not a fixed point: %q -> %q", enc, w2.Encoding())
		}
		if strings.Contains(enc, " ") {
			t.Fatalf("canonical encoding %q contains spaces", enc)
		}
	})
}

// TestBufferUpSweep exercises the facade uplink-buffer override end
// to end: distinct cells from the symmetric configuration, identical
// cells when the override equals the swept buffer (canonical fold).
func TestBufferUpSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates cells")
	}
	s := NewSession()
	o := sweepOpts()
	sym, err := s.Sweep(Sweep{
		Scenarios: []Scenario{{Workload: "long-many", Direction: Up}},
		Buffers:   []int{8}, Probes: []Probe{{Media: VoIP}},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()

	// BufferUp equal to the swept buffer folds onto the symmetric cell:
	// cache hit, identical value (modulo the label suffix).
	fold, err := s.Sweep(Sweep{
		Scenarios: []Scenario{{Workload: "long-many", Direction: Up, BufferUp: 8}},
		Buffers:   []int{8}, Probes: []Probe{{Media: VoIP}},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if after := s.Stats(); after.Misses != st.Misses {
		t.Fatalf("bufup=buffer re-simulated (misses %d -> %d)", st.Misses, after.Misses)
	}
	if fold.Cells[0].Value != sym.Cells[0].Value {
		t.Fatalf("bufup=buffer value %v != symmetric %v", fold.Cells[0].Value, sym.Cells[0].Value)
	}

	// A bloated uplink under upload congestion must measurably change
	// the outcome (that is the paper's bufferbloat story).
	bloat, err := s.Sweep(Sweep{
		Scenarios: []Scenario{{Workload: "long-many", Direction: Up, BufferUp: 256}},
		Buffers:   []int{8}, Probes: []Probe{{Media: VoIP}},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if after := s.Stats(); after.Misses == st.Misses {
		t.Fatal("bufup=256 answered from the symmetric cell")
	}
	if bloat.Cells[0].Value == sym.Cells[0].Value && bloat.Cells[0].TalkMOS == sym.Cells[0].TalkMOS {
		t.Fatal("bloated uplink indistinguishable from BDP uplink")
	}
	if !strings.Contains(bloat.Scenarios[0], "bufup=256") {
		t.Fatalf("label %q missing bufup suffix", bloat.Scenarios[0])
	}
}

// TestMixThroughRecommendAndStream confirms the mix axis is accepted
// by every execution surface, not just Sweep.
func TestMixThroughRecommendAndStream(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates cells")
	}
	s := NewSession()
	o := sweepOpts()
	mix := &Workload{Up: []Traffic{BulkFlows(8)}} // == long-many/up
	rec, err := s.Recommend(t.Context(), RecommendSpec{
		Scenario: Scenario{Mix: mix},
		Probes:   []Probe{{Media: VoIP}},
		Buffers:  []int{8, 64},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Buffer != 8 && rec.Buffer != 64 {
		t.Fatalf("recommended %d, not on the axis", rec.Buffer)
	}
	n := 0
	for c, err := range s.SweepStream(t.Context(), Sweep{
		Scenarios: []Scenario{{Mix: mix}},
		Buffers:   []int{8, 64}, Probes: []Probe{{Media: VoIP}},
	}, o) {
		if err != nil {
			t.Fatal(err)
		}
		if c.Scenario != "access/long-many/up" {
			t.Fatalf("stream cell label %q", c.Scenario)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("streamed %d cells, want 2", n)
	}
}
