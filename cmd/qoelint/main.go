// Command qoelint is the project's static-analysis suite: it
// mechanically enforces the determinism, cache-injectivity, zero-alloc
// hot-path and nil-collector invariants the reproduction's results
// rest on (see internal/lint for the analyzer catalog and the
// //qoe:... annotation contract).
//
// Standalone:
//
//	qoelint ./...            # lint packages, exit 1 on findings
//	qoelint -json ./...      # findings as JSON
//	qoelint -analyzers       # print the analyzer catalog
//
// As a vet tool (the mode CI uses):
//
//	go build -o qoelint ./cmd/qoelint
//	go vet -vettool=$PWD/qoelint ./...
//
// In vet mode the go command hands qoelint one package at a time
// through vet's config-file protocol; findings print like compiler
// errors and fail the vet run.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bufferqoe/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet protocol probes -V=full (tool identity for build
	// caching) and -flags (supported flags) before handing over
	// .cfg files; handle those before normal flag parsing.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion(stdout)
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetUnit(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet("qoelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut   = fs.Bool("json", false, "print findings as JSON")
		catalog   = fs.Bool("analyzers", false, "print the analyzer catalog and exit")
		chdir     = fs.String("C", ".", "directory to resolve package patterns in")
		usageText = `usage: qoelint [-json] [-C dir] [packages ...]
       qoelint -analyzers

Lints the given packages (default ./...) with the qoelint analyzer
suite and exits 1 if any finding survives the //lint:allow
suppressions. Also usable as 'go vet -vettool=$(pwd)/qoelint ./...'.
`
	)
	fs.Usage = func() {
		fmt.Fprint(stderr, usageText)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *catalog {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "qoelint/%s\n\t%s\n\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n\t"))
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "qoelint:", err)
		return 2
	}
	findings, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, "qoelint:", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "qoelint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "qoelint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// printVersion emits the `-V=full` line the go command uses to key its
// action cache: the content hash of the executable means a rebuilt
// qoelint invalidates cached vet results.
func printVersion(w io.Writer) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Fprintf(w, "qoelint version devel buildID=%x\n", h.Sum(nil)[:16])
}
