// Package pkg is a fixture with every annotation in its compliant
// form: qoelint must report nothing here.
package pkg

// Spec is a fully-encoded axis struct.
type Spec struct {
	Name string
	Buf  int
}

// Key covers every field.
//
//qoe:encodes Spec
func (s Spec) Key() string {
	return s.Name + "|" + itoa(s.Buf)
}

// Hot is allocation-clean.
//
//qoe:hotpath
func Hot(dst []byte, s Spec) []byte {
	return append(dst, s.Name...)
}

// Meter no-ops when nil.
//
//qoe:nilsafe
type Meter struct{ n int }

// Add records when the meter is live.
func (m *Meter) Add(d int) {
	if m == nil {
		return
	}
	m.n += d
}

// itoa avoids strconv just to keep the fixture dependency-free.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	buf := make([]byte, 0, 20)
	for n > 0 {
		buf = append(buf, byte('0'+n%10))
		n /= 10
	}
	if neg {
		buf = append(buf, '-')
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return string(buf)
}
