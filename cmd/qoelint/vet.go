package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"

	"bufferqoe/internal/lint"
)

// vetConfig is the package description the go command writes for a
// vet tool (the fields cmd/go's vet action serializes that qoelint
// consumes; same schema as x/tools' unitchecker).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package unit handed over by `go vet
// -vettool=qoelint`: parse the unit's files, type-check against the
// export data the go command already built, run the suite, and report
// findings on stderr with a nonzero exit (which go vet surfaces like
// compiler errors).
func runVetUnit(cfgFile string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "qoelint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "qoelint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// qoelint produces no cross-package facts, but the go command
	// expects the vetx output of every unit it scheduled.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "qoelint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, "qoelint:", err)
			return 2
		}
		files = append(files, f)
	}
	imp := lint.ExportDataImporter(fset, cfg.PackageFile, cfg.ImportMap)
	tpkg, info, err := lint.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "qoelint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &lint.Package{
		PkgPath:   cfg.ImportPath,
		Dir:       cfg.Dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, "qoelint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
