package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"bufferqoe/internal/lint"
)

// TestSelfClean is the tree's own gate: the full analyzer suite over
// the whole module must report nothing (every deliberate escape is a
// justified //lint:allow). This is the same check CI's lint job runs
// through `go vet -vettool`, kept here as a plain test so a violation
// fails `go test ./...` too.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	pkgs, err := lint.Load("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestStandaloneCleanModule runs the standalone driver over the clean
// fixture: zero findings, zero exit.
func TestStandaloneCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-list-backed lint in -short mode")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-C", "testdata/clean", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d on clean module\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings on clean module:\n%s", out.String())
	}
}

// TestStandaloneSeededModule runs the standalone driver over the
// determinism golden module, which deliberately contains unsuppressed
// violations: nonzero exit naming them.
func TestStandaloneSeededModule(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-list-backed lint in -short mode")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../../internal/lint/testdata/determinism", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on seeded module, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "time.Now reads the wall clock") {
		t.Errorf("findings missing the seeded time.Now violation:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "qoelint/determinism") {
		t.Errorf("findings missing the analyzer tag:\n%s", out.String())
	}
}

// TestVettoolProtocol builds the qoelint binary and drives it through
// `go vet -vettool` exactly like CI: the seeded module must fail with
// the violation on stderr, the clean module must pass.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping vettool end-to-end in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "qoelint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qoelint: %v\n%s", err, out)
	}

	seeded := exec.Command("go", "vet", "-vettool="+bin, "./...")
	seeded.Dir = "../../internal/lint/testdata/determinism"
	out, err := seeded.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on the seeded module\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now reads the wall clock") {
		t.Errorf("vet output missing the seeded violation:\n%s", out)
	}

	cleanRun := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cleanRun.Dir = "testdata/clean"
	if out, err := cleanRun.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on the clean module: %v\n%s", err, out)
	}
}

// TestProtocolProbes covers the two pre-flag probes the go command
// sends a vet tool.
func TestProtocolProbes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exit %d", code)
	}
	fields := strings.Fields(out.String())
	if len(fields) < 3 || fields[0] != "qoelint" || fields[1] != "version" {
		t.Errorf("-V=full output %q does not match the '<name> version <id>' shape", out.String())
	}

	out.Reset()
	if code := run([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("-flags output %q, want []", out.String())
	}
}

// TestAnalyzerCatalog checks -analyzers lists the full suite.
func TestAnalyzerCatalog(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers"}, &out, &errb); code != 0 {
		t.Fatalf("-analyzers exit %d\n%s", code, errb.String())
	}
	for _, name := range []string{"determinism", "injectivity", "hotpath", "nilguard"} {
		if !strings.Contains(out.String(), "qoelint/"+name) {
			t.Errorf("catalog missing qoelint/%s:\n%s", name, out.String())
		}
	}
}
