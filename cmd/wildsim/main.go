// Command wildsim regenerates the paper's Section 3 "buffering in the
// wild" analysis (Figure 1) on a synthetic CDN population.
package main

import (
	"flag"
	"fmt"
	"os"

	"bufferqoe"
)

func main() {
	var (
		flows = flag.Int("flows", 400000, "population size")
		seed  = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()
	opt := bufferqoe.Options{Seed: *seed, CDNFlows: *flows}
	for _, id := range []string{"fig1a", "fig1b", "fig1c"} {
		res, err := bufferqoe.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wildsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# %s\n%s\n", id, res.Text)
	}
}
