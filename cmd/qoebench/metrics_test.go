package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bufferqoe"
)

// TestMetricsServer: the -metrics-addr server exposes Prometheus
// text, expvar JSON with a qoe block, and the pprof index, all
// reflecting a sweep run on the observed session.
func TestMetricsServer(t *testing.T) {
	col := bufferqoe.NewCollector()
	addr, stop, err := startMetricsServer("127.0.0.1:0", col)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	s := bufferqoe.NewSession()
	s.SetCollector(col)
	sw := bufferqoe.Sweep{
		Scenarios: []bufferqoe.Scenario{{Workload: "noBG"}},
		Buffers:   []int{8, 64},
		Probes:    []bufferqoe.Probe{{Media: bufferqoe.VoIP}},
	}
	if _, err := s.Sweep(sw, bufferqoe.Options{Seed: 5, Warmup: 2e9, Reps: 1}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return string(body)
	}

	prom := get("/metrics")
	for _, want := range []string{"qoe_cells_simulated_total 2", "qoe_sweep_cells_total 2", "qoe_cell_wall_seconds_bucket"} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}

	var vars struct {
		Qoe bufferqoe.Metrics `json:"qoe"`
	}
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.Qoe.CellsSimulated != 2 || vars.Qoe.PhaseCells != 2 {
		t.Fatalf("expvar qoe block = %+v", vars.Qoe)
	}

	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%s", idx)
	}
}

// TestMetricsAddrAndTraceFlags: the CLI flags wire a collector end to
// end — the sweep serves metrics while running and appends one trace
// event per simulated cell.
func TestMetricsAddrAndTraceFlags(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	_, errOut, code := runCLI(t, "-sweep", "-workloads", "noBG", "-buffers", "8",
		"-probes", "voip", "-metrics-addr", "127.0.0.1:0", "-trace", trace)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(errOut, "serving /metrics") {
		t.Fatalf("no metrics-server banner on stderr: %q", errOut)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("trace has %d events, want 1:\n%s", len(lines), data)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "cell" || ev["sim_ms"] == nil {
		t.Fatalf("trace event malformed: %v", ev)
	}
}

// TestJSONTelemetryBlock: -json reports include the collector
// snapshot.
func TestJSONTelemetryBlock(t *testing.T) {
	out, _, code := runCLI(t, "-sweep", "-workloads", "noBG", "-buffers", "8",
		"-probes", "voip", "-json")
	if code != 0 {
		t.Fatalf("code=%d out=%q", code, out)
	}
	var rep struct {
		Telemetry *bufferqoe.Metrics `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil || rep.Telemetry.CellsSimulated != 1 || rep.Telemetry.SimEvents == 0 {
		t.Fatalf("telemetry block = %+v", rep.Telemetry)
	}
}
