package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bufferqoe"
)

// serveRequest is the JSON body of POST /sweep and POST /recommend.
// Every field is optional; the zero value describes the same sweep as
// running qoebench with no axis flags (access network, noBG workload,
// downstream congestion, the paper's buffer sweep, voip/web/video:SD
// probes). The axis fields mirror the CLI flags one-to-one — the
// server and the CLI compile through the same code path — so anything
// expressible as flags is expressible as a request body.
type serveRequest struct {
	// Axes (see the corresponding CLI flags).
	Network   string   `json:"network,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Mix       string   `json:"mix,omitempty"`
	Dir       string   `json:"dir,omitempty"`
	Buffers   []int    `json:"buffers,omitempty"`
	Probes    []string `json:"probes,omitempty"`
	BufUp     int      `json:"bufup,omitempty"`
	AQM       string   `json:"aqm,omitempty"`
	CC        string   `json:"cc,omitempty"`
	JitterMS  float64  `json:"jitter_ms,omitempty"`

	// Custom link (enables an access-shaped custom link when any is
	// non-zero). Link selects the family ("wired" or "wifi"); the wifi
	// knobs and Reorder mirror the -stations/-wifiretry/-wifiagg/
	// -reorder flags.
	Link          string  `json:"link,omitempty"`
	UpRate        float64 `json:"uprate,omitempty"`
	DownRate      float64 `json:"downrate,omitempty"`
	ClientDelayMS float64 `json:"client_delay_ms,omitempty"`
	ServerDelayMS float64 `json:"server_delay_ms,omitempty"`
	Stations      int     `json:"stations,omitempty"`
	WifiRetry     int     `json:"wifi_retry,omitempty"`
	WifiAgg       int     `json:"wifi_agg,omitempty"`
	Reorder       float64 `json:"reorder,omitempty"`

	// Run options; zero fields inherit the server's -seed/-duration/
	// -warmup/-reps/-clip defaults.
	Seed      uint64  `json:"seed,omitempty"`
	DurationS float64 `json:"duration_s,omitempty"`
	WarmupS   float64 `json:"warmup_s,omitempty"`
	Reps      int     `json:"reps,omitempty"`
	ClipS     int     `json:"clip_s,omitempty"`

	// Recommend-only.
	Target    string  `json:"target,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// flags maps a request onto the CLI's sweepFlags so both surfaces
// compile scenarios through the single compileSweep authority.
func (q serveRequest) flags() sweepFlags {
	f := sweepFlags{
		network:     q.Network,
		workloads:   strings.Join(q.Workloads, ","),
		mix:         q.Mix,
		dir:         q.Dir,
		probes:      strings.Join(q.Probes, ","),
		bufUp:       q.BufUp,
		aqm:         q.AQM,
		cc:          q.CC,
		jitter:      time.Duration(q.JitterMS * float64(time.Millisecond)),
		upRate:      q.UpRate,
		downRate:    q.DownRate,
		clientDelay: time.Duration(q.ClientDelayMS * float64(time.Millisecond)),
		serverDelay: time.Duration(q.ServerDelayMS * float64(time.Millisecond)),
		link:        q.Link,
		stations:    q.Stations,
		wifiRetry:   q.WifiRetry,
		wifiAgg:     q.WifiAgg,
		reorder:     q.Reorder,
	}
	if f.workloads == "" {
		f.workloads = "noBG"
	}
	if f.dir == "" {
		f.dir = "down"
	}
	if f.probes == "" {
		f.probes = "voip,web,video:SD"
	}
	if len(q.Buffers) > 0 {
		parts := make([]string, len(q.Buffers))
		for i, b := range q.Buffers {
			parts[i] = fmt.Sprintf("%d", b)
		}
		f.buffers = strings.Join(parts, ",")
	}
	return f
}

// options overlays the request's run options on the server's
// defaults. Requests that leave everything zero share cache and store
// entries with every other default-option request — the warm path the
// service exists for.
func (q serveRequest) options(base bufferqoe.Options) bufferqoe.Options {
	o := base
	o.OnProgress = nil
	if q.Seed != 0 {
		o.Seed = q.Seed
	}
	if q.DurationS > 0 {
		o.Duration = time.Duration(q.DurationS * float64(time.Second))
	}
	if q.WarmupS > 0 {
		o.Warmup = time.Duration(q.WarmupS * float64(time.Second))
	}
	if q.Reps > 0 {
		o.Reps = q.Reps
	}
	if q.ClipS > 0 {
		o.ClipSeconds = q.ClipS
	}
	return o
}

// serveResponse is the JSON body of successful /sweep and /recommend
// responses: the result plus the session's cumulative engine
// statistics (one session serves every request, so stats are
// service-lifetime totals) and this request's wall time.
type serveResponse struct {
	Sweep     *bufferqoe.Grid           `json:"sweep,omitempty"`
	Recommend *bufferqoe.Recommendation `json:"recommend,omitempty"`
	Stats     jsonStats                 `json:"stats"`
	ElapsedS  float64                   `json:"elapsed_s"`
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	Status  string    `json:"status"`
	UptimeS float64   `json:"uptime_s"`
	Stats   jsonStats `json:"stats"`
}

// qoeServer handles the service mode's endpoints. All requests run on
// one shared Session: one in-memory cache, one persistent store (when
// -store is given), and one bounded worker pool — the engine's
// semaphore, sized by -parallel — so a thousand concurrent requests
// queue their cells instead of spawning a thousand times the
// hardware's worth of simulations, and identical cells across
// requests coalesce into a single compute.
type qoeServer struct {
	session *bufferqoe.Session
	base    bufferqoe.Options
	start   time.Time
}

// handler builds the service mux. Factored off runServe so tests can
// drive the handlers without sockets or signals.
func newServeHandler(session *bufferqoe.Session, base bufferqoe.Options) http.Handler {
	s := &qoeServer{session: session, base: base, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/sweep", s.sweep)
	mux.HandleFunc("/recommend", s.recommend)
	return mux
}

func (s *qoeServer) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:  "ok",
		UptimeS: time.Since(s.start).Seconds(),
		Stats:   statsOf(s.session),
	})
}

// decodeRequest parses one POST body; a nil error means q is usable.
func decodeRequest(w http.ResponseWriter, r *http.Request) (q serveRequest, ok bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return q, false
	}
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return q, false
	}
	return q, true
}

func (s *qoeServer) sweep(w http.ResponseWriter, r *http.Request) {
	q, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	scenarios, bufs, probes, err := q.flags().compileSweep()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	// r.Context() bounds the run: a dropped connection abandons the
	// request's queued cells (in-flight cells drain into the shared
	// cache, so the work is not lost — the retry is warm).
	grid, err := s.session.SweepCtx(r.Context(), bufferqoe.Sweep{
		Scenarios: scenarios, Buffers: bufs, Probes: probes,
	}, q.options(s.base))
	if err != nil {
		writeRunError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, serveResponse{
		Sweep:    grid,
		Stats:    statsOf(s.session),
		ElapsedS: time.Since(start).Seconds(),
	})
}

func (s *qoeServer) recommend(w http.ResponseWriter, r *http.Request) {
	q, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	scenarios, bufs, probes, err := q.flags().compileSweep()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(scenarios) != 1 {
		writeError(w, http.StatusBadRequest, "recommend takes exactly one workload")
		return
	}
	var tgt bufferqoe.Target
	switch q.Target {
	case "min-mos", "":
		tgt = bufferqoe.MinBufferMeetingMOS
	case "max-mos":
		tgt = bufferqoe.MaxAggregateMOS
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown target %q (want min-mos or max-mos)", q.Target))
		return
	}
	if len(q.Buffers) == 0 {
		bufs = nil // let Recommend bracket the paper's sweep with the BDP
	}
	threshold := q.Threshold
	if threshold == 0 {
		threshold = 3.5
	}
	start := time.Now()
	rec, err := s.session.Recommend(r.Context(), bufferqoe.RecommendSpec{
		Scenario: scenarios[0], Probes: probes, Buffers: bufs,
		Target: tgt, Threshold: threshold,
	}, q.options(s.base))
	if err != nil {
		writeRunError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, serveResponse{
		Recommend: rec,
		Stats:     statsOf(s.session),
		ElapsedS:  time.Since(start).Seconds(),
	})
}

// writeRunError maps a run failure to a status: cancellation means
// the client hung up or the server is draining (503 tells well-behaved
// clients to retry), anything else is a request the facade rejected.
func writeRunError(w http.ResponseWriter, err error) {
	if errors.Is(err, bufferqoe.ErrCanceled) {
		writeError(w, http.StatusServiceUnavailable, "canceled before all cells ran")
		return
	}
	writeError(w, http.StatusBadRequest, err.Error())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// runServe runs the HTTP/JSON service until SIGINT/SIGTERM, then
// shuts down gracefully: the listener closes, in-flight requests get
// up to 30s to finish (their cells keep draining into the cache and
// store), and the deferred -store close in run() flushes queued
// writes before the process exits.
func runServe(addr string, session *bufferqoe.Session, base bufferqoe.Options, stderr io.Writer) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "qoebench: -serve: %v\n", err)
		return 2
	}
	srv := &http.Server{
		Handler:           newServeHandler(session, base),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "qoebench: serving /sweep, /recommend, /healthz on http://%s\n", ln.Addr())

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "qoebench: -serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stderr, "qoebench: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(stderr, "qoebench: shutdown: %v\n", err)
		srv.Close()
		return 1
	}
	fmt.Fprintln(stderr, "qoebench: shut down cleanly")
	return 0
}
