package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bufferqoe"
)

// serveOpts are the run options every server test shares: small enough
// that a cell simulates in well under a second.
func serveOpts() bufferqoe.Options {
	return bufferqoe.Options{
		Seed: 5, Duration: 4 * time.Second, Warmup: 2 * time.Second,
		Reps: 1, ClipSeconds: 1, CDNFlows: 20000,
	}
}

func newTestServer(t *testing.T, session *bufferqoe.Session) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newServeHandler(session, serveOpts()))
	t.Cleanup(srv.Close)
	return srv
}

// post sends body to the endpoint and decodes the JSON response.
func post(t *testing.T, url, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(raw, into); err != nil {
			t.Fatalf("bad JSON (%v): %s", err, raw)
		}
	}
	return resp.StatusCode
}

func TestServeHealthz(t *testing.T) {
	srv := newTestServer(t, bufferqoe.NewSession())
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}
}

func TestServeSweep(t *testing.T) {
	srv := newTestServer(t, bufferqoe.NewSession())
	var r serveResponse
	code := post(t, srv.URL+"/sweep",
		`{"buffers": [16, 64], "probes": ["voip"]}`, &r)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if r.Sweep == nil || len(r.Sweep.Cells) != 2 {
		t.Fatalf("sweep response = %+v", r)
	}
	if r.Stats.CellsRun != 2 {
		t.Fatalf("stats = %+v, want 2 simulated cells", r.Stats)
	}
	// Identical request: every cell answered from the shared cache.
	var r2 serveResponse
	post(t, srv.URL+"/sweep", `{"buffers": [16, 64], "probes": ["voip"]}`, &r2)
	if r2.Stats.CellsRun != 2 || r2.Stats.CacheHits != 2 {
		t.Fatalf("repeat stats = %+v, want warm hits", r2.Stats)
	}
}

// TestServeWifiSweep: the wireless axes travel the request schema
// like every other flag — a wifi/BBR sweep over HTTP shares the
// compileSweep authority with the CLI.
func TestServeWifiSweep(t *testing.T) {
	srv := newTestServer(t, bufferqoe.NewSession())
	var r serveResponse
	code := post(t, srv.URL+"/sweep",
		`{"link": "wifi", "stations": 2, "cc": "bbr", "buffers": [16], "probes": ["voip"]}`, &r)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, r)
	}
	if r.Sweep == nil || len(r.Sweep.Cells) != 1 {
		t.Fatalf("wifi sweep response = %+v", r)
	}
	if !strings.Contains(r.Sweep.Cells[0].Scenario, "wifi2") ||
		!strings.Contains(r.Sweep.Cells[0].Scenario, "bbr") {
		t.Fatalf("wifi cell labeled %q", r.Sweep.Cells[0].Scenario)
	}
	var bad serveResponse
	if code := post(t, srv.URL+"/sweep",
		`{"stations": 4, "buffers": [16], "probes": ["voip"]}`, &bad); code != http.StatusBadRequest {
		t.Fatalf("orphan stations: status %d", code)
	}
}

func TestServeRecommend(t *testing.T) {
	srv := newTestServer(t, bufferqoe.NewSession())
	var r serveResponse
	code := post(t, srv.URL+"/recommend",
		`{"buffers": [8, 64], "probes": ["web"]}`, &r)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, r)
	}
	if r.Recommend == nil || r.Recommend.Buffer == 0 {
		t.Fatalf("recommend response = %+v", r)
	}
}

func TestServeBadRequests(t *testing.T) {
	srv := newTestServer(t, bufferqoe.NewSession())
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"bad json", "/sweep", `{"buffers": `, http.StatusBadRequest},
		{"unknown field", "/sweep", `{"bufffers": [16]}`, http.StatusBadRequest},
		{"unknown workload", "/sweep", `{"workloads": ["nonsense"]}`, http.StatusBadRequest},
		{"bad target", "/recommend", `{"target": "fastest"}`, http.StatusBadRequest},
		{"multi-workload recommend", "/recommend", `{"workloads": ["noBG", "long-many"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e map[string]string
			if code := post(t, srv.URL+tc.path, tc.body, &e); code != tc.want {
				t.Fatalf("status %d, want %d (%v)", code, tc.want, e)
			}
			if e["error"] == "" {
				t.Fatal("error body missing")
			}
		})
	}
	resp, err := http.Get(srv.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Fatalf("GET /sweep = %d, Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// TestServeConcurrentRecommend is the load acceptance test: at least a
// thousand concurrent Recommend requests against one server, all
// answered correctly, no goroutine leaks. The requests are identical,
// so the engine coalesces them onto one set of cells — the service's
// designed-for hot path.
func TestServeConcurrentRecommend(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped with -short")
	}
	session := bufferqoe.NewSession()
	srv := newTestServer(t, session)
	client := srv.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = 256

	// Warm the cells once so the concurrent wave measures the service,
	// not a thousand waiters on first-compute.
	var warm serveResponse
	if code := post(t, srv.URL+"/recommend", `{"buffers": [8, 64], "probes": ["voip"]}`, &warm); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}

	const clients = 1000
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Post(srv.URL+"/recommend", "application/json",
				strings.NewReader(`{"buffers": [8, 64], "probes": ["voip"]}`))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			var r serveResponse
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				errs <- "decode: " + err.Error()
				return
			}
			if resp.StatusCode != http.StatusOK || r.Recommend == nil {
				errs <- fmt.Sprintf("status %d, recommend %v", resp.StatusCode, r.Recommend)
				return
			}
			if r.Recommend.Buffer != warm.Recommend.Buffer {
				errs <- fmt.Sprintf("buffer %d, want %d", r.Recommend.Buffer, warm.Recommend.Buffer)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// Every request after warmup must have been answered from cache.
	st := session.Stats()
	if st.Hits == 0 {
		t.Fatalf("no cache hits across %d requests: %+v", clients, st)
	}
	srv.Close()
	waitForServeGoroutines(t)
}

// waitForServeGoroutines fails the test if the goroutine count does
// not settle back near the baseline after the server closes.
func waitForServeGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		// The test binary's own baseline is single digits; idle HTTP
		// keep-alive reapers drain within seconds.
		if n <= 20 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines still running:\n%s", n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestServeWarmStoreRestart: a restarted server sharing the store
// directory answers a previously-run sweep entirely from disk.
func TestServeWarmStoreRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"buffers": [16], "probes": ["voip", "web"]}`

	s1 := bufferqoe.NewSession()
	if err := s1.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	srv1 := newTestServer(t, s1)
	var cold serveResponse
	if code := post(t, srv1.URL+"/sweep", body, &cold); code != http.StatusOK {
		t.Fatalf("cold status %d", code)
	}
	if cold.Stats.CellsRun == 0 {
		t.Fatalf("cold stats = %+v", cold.Stats)
	}
	srv1.Close()
	if err := s1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh session and handler over the same directory.
	s2 := bufferqoe.NewSession()
	if err := s2.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	defer s2.CloseStore()
	srv2 := newTestServer(t, s2)
	var warmResp serveResponse
	if code := post(t, srv2.URL+"/sweep", body, &warmResp); code != http.StatusOK {
		t.Fatalf("warm status %d", code)
	}
	if warmResp.Stats.CellsRun != 0 || warmResp.Stats.StoreHits == 0 {
		t.Fatalf("restarted server simulated cells: %+v", warmResp.Stats)
	}
	coldJSON, _ := json.Marshal(cold.Sweep)
	warmJSON, _ := json.Marshal(warmResp.Sweep)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatal("warm-store sweep differs from cold sweep")
	}
}

// TestServeExclusiveFlags: -serve refuses to combine with one-shot
// modes.
func TestServeExclusiveFlags(t *testing.T) {
	_, errOut, code := runCLI(t, "-serve", "localhost:0", "-sweep")
	if code != 2 || !strings.Contains(errOut, "-serve") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}
