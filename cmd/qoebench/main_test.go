package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tinyArgs shrink simulation work for CLI tests.
var tinyArgs = []string{"-seed", "5", "-duration", "4s", "-warmup", "2s", "-reps", "1", "-clip", "1", "-cdnflows", "20000"}

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(append(append([]string(nil), args...), tinyArgs...), &out, &errb)
	return out.String(), errb.String(), code
}

func TestList(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 || !strings.Contains(out, "fig7b") || !strings.Contains(out, "table1") {
		t.Fatalf("code=%d out=%q", code, out)
	}
	// -list must also expose every sweep axis: networks with their
	// paper buffer sweeps, workload presets with component breakdowns,
	// probes, AQMs, CCs, and the mix grammar.
	for _, want := range []string{
		"access", "backbone", "8 16 32 64 128 256", "8 28 749 7490",
		"long-many", "8 long-lived flow(s); down: 64 long-lived flow(s)",
		"short-overload", "2304 web loop(s), think 1.2s",
		"video:SD", "fq-codel", "reno", "mix grammar", "up:long=2;down:web=16x3/1.5s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestSweepMix drives the composable workload axis from the CLI: a
// custom mix sweeps end to end, and a mix equal to a Table 1 preset
// labels — and caches — as the preset.
func TestSweepMix(t *testing.T) {
	out, errOut, code := runCLI(t,
		"-sweep", "-mix", "up:long=2;down:web=16x3/1.5s",
		"-buffers", "16,64", "-probes", "voip")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"access/mix(up:long=2;down:web=48/1.5s)", "2 cells", "2 simulated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("mix sweep output missing %q:\n%s", want, out)
		}
	}
	// Preset-equal mix: the label is the preset's.
	out, errOut, code = runCLI(t,
		"-sweep", "-mix", "up:long=8", "-buffers", "16", "-probes", "voip")
	if code != 0 {
		t.Fatalf("preset-equal mix: exit code %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "access/long-many/up") {
		t.Fatalf("preset-equal mix not folded onto the preset label:\n%s", out)
	}
}

func TestSweepMixBadFlags(t *testing.T) {
	if _, errOut, code := runCLI(t, "-sweep", "-mix", "up:warp=9", "-buffers", "16", "-probes", "voip"); code != 2 ||
		!strings.Contains(errOut, "unknown kind") {
		t.Fatalf("bad mix: code %d, stderr %q", code, errOut)
	}
	if _, _, code := runCLI(t, "-sweep", "-mix", "up:long=2", "-workloads", "short-few", "-buffers", "16", "-probes", "voip"); code != 2 {
		t.Fatalf("-mix with -workloads: code %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-sweep", "-mix", "up:long=2", "-dir", "up", "-buffers", "16", "-probes", "voip"); code != 2 {
		t.Fatalf("-mix with -dir: code %d, want 2", code)
	}
	// Backbone mixes are downstream-only; the facade rejects upstream
	// components at validation (exit 1, an API-level error).
	if _, errOut, code := runCLI(t, "-sweep", "-network", "backbone", "-mix", "up:long=2", "-buffers", "100", "-probes", "web"); code != 1 ||
		!strings.Contains(errOut, "downstream-only") {
		t.Fatalf("backbone upstream mix: code %d, stderr %q", code, errOut)
	}
}

// TestSweepBufUp drives the asymmetric-buffer override from the CLI.
func TestSweepBufUp(t *testing.T) {
	out, errOut, code := runCLI(t,
		"-sweep", "-workloads", "long-many", "-dir", "up", "-bufup", "256",
		"-buffers", "16", "-probes", "voip")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "access/long-many/up+bufup=256") {
		t.Fatalf("bufup label missing:\n%s", out)
	}
	// The backbone has no uplink buffer.
	if _, errOut, code := runCLI(t, "-sweep", "-network", "backbone", "-workloads", "long", "-bufup", "8", "-buffers", "100", "-probes", "web"); code != 1 ||
		!strings.Contains(errOut, "access testbed only") {
		t.Fatalf("backbone bufup: code %d, stderr %q", code, errOut)
	}
}

func TestCommaSeparatedExperiments(t *testing.T) {
	out, _, code := runCLI(t, "-exp", "fig1a,fig1b,table2")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, want := range []string{"# fig1a", "# fig1b", "# table2", "3/3 experiments ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFailedExperimentExitCode(t *testing.T) {
	out, errOut, code := runCLI(t, "-exp", "table2,bogus")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(out, "# table2") || !strings.Contains(errOut, "FAILED bogus") {
		t.Fatalf("out=%q err=%q", out, errOut)
	}
}

func TestJSONExperiments(t *testing.T) {
	out, _, code := runCLI(t, "-exp", "fig1a,fig1b", "-json")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(report.Experiments) != 2 || !report.Experiments[0].OK || report.Experiments[0].Text == "" {
		t.Fatalf("report = %+v", report)
	}
	// fig1a and fig1b share the CDN population cell.
	if report.Stats.CacheHits == 0 || report.Stats.CellsRun == 0 {
		t.Fatalf("stats = %+v", report.Stats)
	}
}

// TestSweepCustomLink is the CLI half of the custom-link acceptance
// check: a non-paper rate with a non-paper AQM, end to end.
func TestSweepCustomLink(t *testing.T) {
	out, errOut, code := runCLI(t,
		"-sweep", "-uprate", "1e9", "-downrate", "1e9",
		"-clientdelay", "2ms", "-serverdelay", "10ms",
		"-aqm", "codel", "-workloads", "noBG,short-few", "-dir", "up",
		"-buffers", "16,64", "-probes", "voip,web")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"custom(1G/1G@2ms/10ms)/noBG", "custom(1G/1G@2ms/10ms)/short-few/up+codel", "voip", "web", "8 cells"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
}

// TestSweepWifiBBR drives the wireless axes from the CLI: the wifi
// preset link with tuned contention/aggregation, BBR congestion
// control, and reordering sweep end to end and label accordingly.
func TestSweepWifiBBR(t *testing.T) {
	out, errOut, code := runCLI(t,
		"-sweep", "-link", "wifi", "-stations", "2", "-wifiagg", "8",
		"-cc", "bbr", "-reorder", "0.01",
		"-buffers", "16", "-probes", "voip")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"custom(65M/65M@2ms/15ms+wifi2+ro0.01)/noBG+bbr", "1 cells"} {
		if !strings.Contains(out, want) {
			t.Fatalf("wifi sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepWifiBadFlags(t *testing.T) {
	// Wifi knobs without the wifi link family must be rejected, not
	// silently ignored on a wired cell.
	if _, _, code := runCLI(t, "-sweep", "-stations", "4", "-buffers", "16", "-probes", "voip"); code != 2 {
		t.Fatalf("orphan -stations: code %d", code)
	}
	if _, _, code := runCLI(t, "-sweep", "-link", "token-ring", "-buffers", "16", "-probes", "voip"); code != 2 {
		t.Fatalf("unknown -link: code %d", code)
	}
	if _, _, code := runCLI(t, "-sweep", "-link", "wifi", "-stations", "-3", "-buffers", "16", "-probes", "voip"); code != 1 {
		t.Fatalf("negative stations: code %d", code)
	}
	if _, _, code := runCLI(t, "-sweep", "-reorder", "1.5", "-buffers", "16", "-probes", "voip"); code != 1 {
		t.Fatalf("reorder out of range: code %d", code)
	}
	if _, _, code := runCLI(t, "-sweep", "-cc", "vegas", "-buffers", "16", "-probes", "voip"); code != 1 {
		t.Fatalf("unknown cc: code %d", code)
	}
}

func TestSweepJSON(t *testing.T) {
	out, _, code := runCLI(t,
		"-sweep", "-uprate", "1e9", "-downrate", "1e9",
		"-buffers", "16", "-probes", "web", "-json")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if report.Sweep == nil || len(report.Sweep.Cells) != 1 {
		t.Fatalf("sweep report = %+v", report)
	}
	c := report.Sweep.Cells[0]
	if c.Metric != "plt_s" || c.Value <= 0 || c.Rating == "" {
		t.Fatalf("cell = %+v", c)
	}
	if report.Stats.CellsRun != 1 {
		t.Fatalf("stats = %+v", report.Stats)
	}
}

func TestSweepBadFlags(t *testing.T) {
	if _, _, code := runCLI(t, "-sweep", "-network", "carrier-pigeon"); code != 2 {
		t.Fatalf("bad network: code %d", code)
	}
	if _, _, code := runCLI(t, "-sweep", "-buffers", "8,oops"); code != 2 {
		t.Fatalf("bad buffers: code %d", code)
	}
	if _, _, code := runCLI(t, "-sweep", "-probes", "telepathy"); code != 2 {
		t.Fatalf("bad probes: code %d", code)
	}
	if _, _, code := runCLI(t, "-sweep", "-workloads", "nope"); code != 1 {
		t.Fatalf("bad workload: code %d", code)
	}
	if _, _, code := runCLI(t); code != 2 {
		t.Fatalf("no mode: code %d", code)
	}
	// The backbone has no direction axis: an explicit non-down -dir
	// must be rejected, not silently measured downstream.
	if _, errOut, code := runCLI(t, "-sweep", "-network", "backbone", "-workloads", "short-low", "-dir", "up", "-buffers", "100", "-probes", "web"); code != 2 {
		t.Fatalf("backbone -dir up: code %d, stderr %q", code, errOut)
	}
	if _, _, code := runCLI(t, "-sweep", "-uprate", "-5e6", "-buffers", "16", "-probes", "web"); code != 1 {
		t.Fatalf("negative uprate: code %d", code)
	}
}

// TestSweepProgress: -progress streams one per-cell completion line
// per cell to stderr.
func TestSweepProgress(t *testing.T) {
	out, errOut, code := runCLI(t,
		"-sweep", "-workloads", "noBG", "-buffers", "16,64", "-probes", "voip", "-progress")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "2 cells") {
		t.Fatalf("sweep output missing summary:\n%s", out)
	}
	if n := strings.Count(errOut, "progress: "); n != 2 {
		t.Fatalf("progress lines = %d, want 2:\n%s", n, errOut)
	}
	if !strings.Contains(errOut, "progress: 2/2") {
		t.Fatalf("missing final progress line:\n%s", errOut)
	}
}

func TestProgressRequiresStreamingMode(t *testing.T) {
	if _, _, code := runCLI(t, "-exp", "table2", "-progress"); code != 2 {
		t.Fatalf("-progress with -exp: code %d, want 2", code)
	}
}

// TestTimeoutExpiry: an already-expired deadline abandons the sweep
// with a non-zero exit and a cancellation notice.
func TestTimeoutExpiry(t *testing.T) {
	_, errOut, code := runCLI(t,
		"-sweep", "-workloads", "noBG", "-buffers", "16", "-probes", "voip",
		"-timeout", "1ns")
	if code != 1 {
		t.Fatalf("expired deadline: code %d, want 1 (stderr %q)", code, errOut)
	}
	if !strings.Contains(errOut, "deadline exceeded") {
		t.Fatalf("no cancellation notice:\n%s", errOut)
	}
}

// TestRecommendCLI: the recommender end to end, text and JSON.
func TestRecommendCLI(t *testing.T) {
	out, errOut, code := runCLI(t,
		"-recommend", "-workloads", "noBG", "-probes", "voip",
		"-buffers", "8,16,32,64", "-target", "min-mos")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"recommended buffer: 8 packets", "threshold met: true", "nearest paper scheme", "evaluated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("recommend output missing %q:\n%s", want, out)
		}
	}

	jsonOut, _, code := runCLI(t,
		"-recommend", "-workloads", "noBG", "-probes", "voip",
		"-buffers", "8,16,32,64", "-json")
	if code != 0 {
		t.Fatalf("json exit code %d", code)
	}
	var report jsonReport
	if err := json.Unmarshal([]byte(jsonOut), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, jsonOut)
	}
	if report.Recommend == nil || report.Recommend.Buffer != 8 {
		t.Fatalf("recommend report = %+v", report.Recommend)
	}
	if report.Recommend.CellsEvaluated >= report.Recommend.GridCells {
		t.Fatalf("no search savings: %+v", report.Recommend)
	}
}

func TestRecommendBadFlags(t *testing.T) {
	if _, _, code := runCLI(t, "-recommend", "-workloads", "noBG,short-few", "-probes", "voip"); code != 2 {
		t.Fatalf("two workloads: code %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-recommend", "-workloads", "noBG", "-probes", "voip", "-target", "fastest"); code != 2 {
		t.Fatalf("bad target: code %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-recommend", "-sweep", "-workloads", "noBG", "-probes", "voip"); code != 2 {
		t.Fatalf("-recommend with -sweep: code %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-recommend", "-exp", "fig7b", "-workloads", "noBG", "-probes", "voip"); code != 2 {
		t.Fatalf("-recommend with -exp: code %d, want 2", code)
	}
}

func TestProbeProfileOnNonVideoRejected(t *testing.T) {
	if _, _, code := runCLI(t, "-sweep", "-buffers", "16", "-probes", "web:HD"); code != 2 {
		t.Fatalf("web:HD probe: code %d, want 2", code)
	}
}

func TestEmptyExperimentListRejected(t *testing.T) {
	if _, _, code := runCLI(t, "-exp", ","); code != 2 {
		t.Fatalf("-exp ',': code %d, want 2 (not a silent 0/0 success)", code)
	}
}

func TestSweepAndExpMutuallyExclusive(t *testing.T) {
	if _, _, code := runCLI(t, "-sweep", "-exp", "fig7b", "-buffers", "16", "-probes", "web"); code != 2 {
		t.Fatalf("-sweep with -exp: code %d, want 2", code)
	}
}
