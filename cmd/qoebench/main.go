// Command qoebench runs the paper's experiments by ID and prints the
// regenerated tables and heatmaps.
//
// Usage:
//
//	qoebench -list
//	qoebench -exp fig7b
//	qoebench -exp all -duration 60s -reps 5
//	qoebench -exp all -parallel 16
//
// With -exp all, experiments run through the parallel cell engine:
// cells fan out across -parallel workers (default GOMAXPROCS),
// configurations shared between experiments are simulated once, and a
// failing experiment is reported at the end instead of aborting the
// suite. Output and results are bit-identical at any parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bufferqoe"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs")
		seed     = flag.Uint64("seed", 42, "random seed")
		duration = flag.Duration("duration", 30*time.Second, "per-cell background measurement window")
		warmup   = flag.Duration("warmup", 5*time.Second, "background warmup before measuring")
		reps     = flag.Int("reps", 3, "calls/streams/fetches per cell")
		clip     = flag.Int("clip", 4, "video clip length in seconds")
		flows    = flag.Int("cdnflows", 200000, "synthetic CDN population size (fig1*)")
		parallel = flag.Int("parallel", 0, "cell worker-pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, id := range bufferqoe.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "qoebench: -exp required (or -list)")
		os.Exit(2)
	}
	bufferqoe.SetParallelism(*parallel)
	opt := bufferqoe.Options{
		Seed:        *seed,
		Duration:    *duration,
		Warmup:      *warmup,
		Reps:        *reps,
		ClipSeconds: *clip,
		CDNFlows:    *flows,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bufferqoe.Experiments()
	}

	start := time.Now()
	outcomes := bufferqoe.RunAll(ids, opt)
	total := time.Since(start)

	var failed []bufferqoe.Outcome
	for _, oc := range outcomes {
		if oc.Err != nil {
			failed = append(failed, oc)
			continue
		}
		fmt.Printf("# %s (%.1fs)\n%s\n", oc.ID, oc.Elapsed.Seconds(), oc.Result.Text)
	}

	st := bufferqoe.Stats()
	fmt.Printf("# summary: %d/%d experiments ok in %.1fs (%d workers; %d cells simulated, %d cache hits)\n",
		len(outcomes)-len(failed), len(outcomes), total.Seconds(),
		st.Workers, st.Misses, st.Hits)
	if len(failed) > 0 {
		for _, oc := range failed {
			fmt.Fprintf(os.Stderr, "qoebench: FAILED %s after %.1fs: %v\n",
				oc.ID, oc.Elapsed.Seconds(), oc.Err)
		}
		os.Exit(1)
	}
}
