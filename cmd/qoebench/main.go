// Command qoebench runs the paper's experiments by ID and prints the
// regenerated tables and heatmaps.
//
// Usage:
//
//	qoebench -list
//	qoebench -exp fig7b
//	qoebench -exp all -duration 60s -reps 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bufferqoe"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment ID (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs")
		seed     = flag.Uint64("seed", 42, "random seed")
		duration = flag.Duration("duration", 30*time.Second, "per-cell background measurement window")
		warmup   = flag.Duration("warmup", 5*time.Second, "background warmup before measuring")
		reps     = flag.Int("reps", 3, "calls/streams/fetches per cell")
		clip     = flag.Int("clip", 4, "video clip length in seconds")
		flows    = flag.Int("cdnflows", 200000, "synthetic CDN population size (fig1*)")
	)
	flag.Parse()

	if *list {
		for _, id := range bufferqoe.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "qoebench: -exp required (or -list)")
		os.Exit(2)
	}
	opt := bufferqoe.Options{
		Seed:        *seed,
		Duration:    *duration,
		Warmup:      *warmup,
		Reps:        *reps,
		ClipSeconds: *clip,
		CDNFlows:    *flows,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = bufferqoe.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := bufferqoe.Run(id, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# %s (%.1fs)\n%s\n", id, time.Since(start).Seconds(), res.Text)
	}
}
