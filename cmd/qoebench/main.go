// Command qoebench runs the paper's experiments by ID and prints the
// regenerated tables and heatmaps, or sweeps custom scenarios through
// the composable Scenario/Probe/Sweep API.
//
// Usage:
//
//	qoebench -list
//	qoebench -exp fig7b
//	qoebench -exp fig7a,fig7b,fig8 -json
//	qoebench -exp all -duration 60s -reps 5 -parallel 16 -timeout 10m
//	qoebench -sweep -workloads short-few,long-many -dir up -buffers 8,64,256 -progress
//	qoebench -sweep -mix "up:long=2;down:web=16x3/1.5s" -buffers 8,64,256 -probes voip,web
//	qoebench -sweep -uprate 1e9 -downrate 1e9 -aqm codel -probes voip,web -json
//	qoebench -sweep -link wifi -stations 8 -cc bbr -probes voip,video:SD
//	qoebench -sweep -workloads long-many -dir bidir -bufup 256 -probes voip
//	qoebench -recommend -workloads long-many -dir up -probes voip,web -target max-mos
//	qoebench -sweep -workloads short-few -dir up -metrics-addr localhost:6060 -trace cells.jsonl
//	qoebench -sweep -workloads long-many -dir up -store /var/cache/qoe -json
//	qoebench -sweep -workloads long-many -dir up -reps 10 -halfwidth 0.1 -json
//	qoebench -serve localhost:8080 -store /var/cache/qoe
//	qoebench -exp fig7b -cpuprofile cpu.pprof -memprofile mem.pprof
//
// With multiple experiments (or -exp all), experiments run through
// the parallel cell engine: cells fan out across -parallel workers
// (default GOMAXPROCS), configurations shared between experiments are
// simulated once, and a failing experiment is reported at the end
// instead of aborting the suite. Output and results are bit-identical
// at any parallelism.
//
// In -sweep mode the workload/buffer/probe axes are swept over one
// network: a paper testbed (-network access|backbone), a custom
// access-shaped link (-uprate/-downrate/-clientdelay/-serverdelay),
// or an 802.11 wireless last hop (-link wifi, tuned by -stations,
// -wifiretry, -wifiagg), optionally under an AQM discipline (-aqm), a
// congestion control (-cc, including the paced model-based bbr),
// last-hop jitter (-jitter), packet reordering (-reorder), and an
// asymmetric uplink buffer (-bufup). The workload axis takes Table 1 preset names
// (-workloads/-dir) or a composable custom mix (-mix, grammar in
// -list); a mix equal to a preset answers from the preset's cache
// cells. -json emits machine-readable results plus engine statistics
// in every mode.
//
// -halfwidth enables adaptive replication: a cell stops repeating
// once the 95% confidence interval of its per-repetition QoE score
// is tighter than the given half-width (in MOS points), instead of
// always running -reps repetitions; -minreps floors the rule. The
// stopping rule is part of the cell's cache identity, so adaptive
// and exhaustive runs never contaminate each other's caches, and an
// adaptive cell's repetitions are the exhaustive cell's first n.
//
// -cpuprofile/-memprofile write pprof profiles covering whichever
// mode ran, including -benchjson.
//
// In -recommend mode the buffer axis is searched, not swept: the
// adaptive recommender brackets the candidate buffers (the paper's
// sweep plus the link's BDP unless -buffers is given) and bisects for
// the -target optimum, evaluating only the buffers the search visits.
//
// -timeout bounds any mode by a wall-clock deadline: on expiry queued
// cells are abandoned (in-flight cells drain into the session cache)
// and qoebench exits non-zero. -progress streams per-cell completions
// with throughput and ETA to stderr as workers finish them.
//
// -store DIR attaches a persistent content-addressed result store:
// any cell already computed by a run sharing DIR (other processes,
// machines, CI jobs) is answered from disk instead of simulated, and
// fresh results are persisted for future runs. Entries are keyed by
// the canonical cell spec plus the engine's semantic version, so a
// store never serves values the current code would not produce.
//
// -serve ADDR turns qoebench into a long-lived HTTP/JSON service:
// POST /sweep and POST /recommend accept the sweep axes as a JSON
// body and run them on one shared session (one cache, one bounded
// worker pool), GET /healthz reports liveness and engine statistics,
// and SIGINT/SIGTERM drains in-flight requests before exiting. Pair
// with -store so the service starts warm and keeps learning; see
// serve.go for the request schema.
//
// -metrics-addr serves live telemetry while the run executes:
// /metrics (Prometheus text), /debug/vars (expvar), and /debug/pprof/
// (CPU profiles carry per-cell scenario labels). -trace appends one
// JSON event per freshly simulated cell — its build/sim/score phase
// timings and simulator event counts — to a file; -json embeds the
// same collector snapshot under "telemetry".
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"bufferqoe"
	"bufferqoe/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonReport is the -json envelope shared by all modes.
type jsonReport struct {
	Experiments []jsonExperiment          `json:"experiments,omitempty"`
	Sweep       *bufferqoe.Grid           `json:"sweep,omitempty"`
	Recommend   *bufferqoe.Recommendation `json:"recommend,omitempty"`
	Stats       jsonStats                 `json:"stats"`
	// Telemetry is the run's collector snapshot: per-phase wall time,
	// cell wall-time distribution, and simulator event/pool counters.
	Telemetry *bufferqoe.Metrics `json:"telemetry,omitempty"`
	ElapsedS  float64            `json:"elapsed_s"`
}

// telemetryOf snapshots a session's collector for the -json report.
func telemetryOf(s *bufferqoe.Session) *bufferqoe.Metrics {
	m := s.Metrics()
	return &m
}

type jsonExperiment struct {
	ID       string  `json:"id"`
	OK       bool    `json:"ok"`
	ElapsedS float64 `json:"elapsed_s"`
	Error    string  `json:"error,omitempty"`
	Text     string  `json:"text,omitempty"`
}

type jsonStats struct {
	Workers       int    `json:"workers"`
	CellsRun      uint64 `json:"cells_simulated"`
	CacheHits     uint64 `json:"cache_hits"`
	CachedCells   int    `json:"cached_cells"`
	CellsCanceled uint64 `json:"cells_canceled,omitempty"`
	// Store counters are zero (and omitted) unless -store attached a
	// persistent tier; a fully warm store shows cells_simulated 0 with
	// store_hits covering every unique cell.
	StoreHits   uint64 `json:"store_hits,omitempty"`
	StoreMisses uint64 `json:"store_misses,omitempty"`
	StoreWrites uint64 `json:"store_writes,omitempty"`
}

func statsOf(s *bufferqoe.Session) jsonStats {
	st := s.Stats()
	return jsonStats{
		Workers: st.Workers, CellsRun: st.Misses, CacheHits: st.Hits,
		CachedCells: st.CachedCells, CellsCanceled: st.Canceled,
		StoreHits: st.StoreHits, StoreMisses: st.StoreMisses, StoreWrites: st.StoreWrites,
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qoebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp       = fs.String("exp", "", "experiment ID(s), comma-separated (see -list), or 'all'")
		list      = fs.Bool("list", false, "list experiment IDs")
		seed      = fs.Uint64("seed", 42, "random seed")
		duration  = fs.Duration("duration", 30*time.Second, "per-cell background measurement window")
		warmup    = fs.Duration("warmup", 5*time.Second, "background warmup before measuring")
		reps      = fs.Int("reps", 3, "calls/streams/fetches per cell")
		halfWidth = fs.Float64("halfwidth", 0, "adaptive replication: stop repeating a cell once its 95% CI half-width (MOS points) is at most this; 0 disables and always runs -reps repetitions")
		minReps   = fs.Int("minreps", 0, "adaptive replication: minimum repetitions before -halfwidth may stop a cell (default 2; ignored without -halfwidth)")
		clip      = fs.Int("clip", 4, "video clip length in seconds")
		flows     = fs.Int("cdnflows", 200000, "synthetic CDN population size (fig1*)")
		parallel  = fs.Int("parallel", 0, "cell worker-pool size (0 = GOMAXPROCS)")
		jsonOut   = fs.Bool("json", false, "emit machine-readable JSON results and engine stats")
		timeout   = fs.Duration("timeout", 0, "overall wall-clock deadline; on expiry queued cells are abandoned and the run exits non-zero (0 = none)")
		progress  = fs.Bool("progress", false, "print per-cell completion progress with rate and ETA to stderr (-sweep and -recommend modes)")

		storeDir  = fs.String("store", "", "persistent result store directory: cells computed by any prior run sharing it are answered from disk instead of simulated, and fresh results persist for future runs")
		serveAddr = fs.String("serve", "", "run as a long-lived HTTP/JSON service on this address (POST /sweep, POST /recommend, GET /healthz); pair with -store for a disk-warm cache")

		metricsAddr = fs.String("metrics-addr", "", "serve live telemetry on this address during the run: /metrics (Prometheus text), /debug/vars (expvar), /debug/pprof/ (e.g. localhost:6060)")
		traceFile   = fs.String("trace", "", "append one JSON trace event per freshly simulated cell to this file (build/sim/score phase timings, simulator event counts)")

		sweep     = fs.Bool("sweep", false, "sweep scenarios instead of running paper experiments")
		network   = fs.String("network", "access", "sweep: paper testbed (access or backbone)")
		workloads = fs.String("workloads", "noBG", "sweep: comma-separated Table 1 workload names")
		mix       = fs.String("mix", "", "sweep: custom workload mix, e.g. \"up:long=2;down:web=16x3/1.5s\" (see -list; replaces -workloads/-dir)")
		dir       = fs.String("dir", "down", "sweep: congestion direction (down, up, bidir)")
		bufUp     = fs.Int("bufup", 0, "sweep: uplink buffer override in packets (access shape; 0 = same as the swept buffer)")
		buffers   = fs.String("buffers", "", "sweep: comma-separated buffer sizes in packets (default: the paper's sweep for the network)")
		probes    = fs.String("probes", "voip,web,video:SD", "sweep: comma-separated probes (voip, web, video[:SD|:HD])")
		aqm       = fs.String("aqm", "", "sweep: queue discipline (droptail, codel, fq-codel, red, ared, pie)")
		cc        = fs.String("cc", "", "sweep: congestion control (cubic, reno, bic, bbr)")
		jitter    = fs.Duration("jitter", 0, "sweep: mean last-hop jitter (access shape)")

		linkKind  = fs.String("link", "", "sweep: bottleneck link family: wired (default; customize with -uprate/-downrate/...) or wifi (802.11 MAC last hop)")
		stations  = fs.Int("stations", 0, "sweep: wifi contending stations (default 4; requires -link wifi)")
		wifiRetry = fs.Int("wifiretry", 0, "sweep: wifi per-aggregate retry limit (default 7; requires -link wifi)")
		wifiAgg   = fs.Int("wifiagg", 0, "sweep: wifi A-MPDU aggregation cap in frames (default 16, 1 disables; requires -link wifi)")
		reorder   = fs.Float64("reorder", 0, "sweep: packet reordering probability in [0,1) behind the bottleneck (access shape)")

		recommend = fs.Bool("recommend", false, "search the buffer axis for the -target optimum instead of sweeping it exhaustively")
		target    = fs.String("target", "min-mos", "recommend: min-mos (smallest buffer with every probe >= -threshold) or max-mos (best aggregate MOS)")
		threshold = fs.Float64("threshold", 3.5, "recommend: per-probe MOS floor for min-mos")

		benchJSON = fs.String("benchjson", "", "run the canonical perf benchmarks and write JSON results to this file (e.g. BENCH_3.json); all other modes are skipped")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile at the end of the run to this file (go tool pprof)")

		upRate      = fs.Float64("uprate", 0, "sweep: custom uplink rate in bits/s (enables a custom link)")
		downRate    = fs.Float64("downrate", 0, "sweep: custom downlink rate in bits/s")
		clientDelay = fs.Duration("clientdelay", 0, "sweep: custom client-side one-way delay")
		serverDelay = fs.Duration("serverdelay", 0, "sweep: custom server-side one-way delay")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		printList(stdout)
		return 0
	}

	// Profiles cover every mode, including -benchjson, so a perf
	// regression spotted in a BENCH artifact can be profiled with the
	// exact same command plus one flag.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "qoebench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "qoebench: -cpuprofile: %v\n", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "qoebench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "qoebench: -memprofile: %v\n", err)
			}
		}()
	}

	if *benchJSON != "" {
		return runBenchJSON(*benchJSON, stdout, stderr)
	}

	session := bufferqoe.NewSession()
	session.SetParallelism(*parallel)
	opt := bufferqoe.Options{
		Seed:        *seed,
		Duration:    *duration,
		Warmup:      *warmup,
		Reps:        *reps,
		ClipSeconds: *clip,
		CDNFlows:    *flows,
		CIHalfWidth: *halfWidth,
		MinReps:     *minReps,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *progress && !*sweep && !*recommend {
		fmt.Fprintln(stderr, "qoebench: -progress requires -sweep or -recommend")
		return 2
	}
	if *progress {
		opt.OnProgress = func(p bufferqoe.Progress) {
			line := fmt.Sprintf("progress: %d/%d %s/%s@%d",
				p.Completed, p.Total, p.Cell.Scenario, p.Cell.Probe, p.Cell.Buffer)
			if p.Rate > 0 {
				line += fmt.Sprintf(" (%.1f cells/s, eta %s)", p.Rate, p.ETA.Round(time.Second))
			}
			fmt.Fprintln(stderr, line)
		}
	}

	// Telemetry: a collector is attached when any output wants it —
	// the metrics endpoint, a trace file, or the -json report. Without
	// one the run takes the engine's collector-off fast paths.
	var col *bufferqoe.Collector
	if *metricsAddr != "" || *traceFile != "" || *jsonOut {
		col = bufferqoe.NewCollector()
		session.SetCollector(col)
	}
	if *traceFile != "" {
		f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "qoebench: -trace: %v\n", err)
			return 2
		}
		defer f.Close()
		col.TraceTo(f)
	}
	if *metricsAddr != "" {
		bound, stop, err := startMetricsServer(*metricsAddr, col)
		if err != nil {
			fmt.Fprintf(stderr, "qoebench: -metrics-addr: %v\n", err)
			return 2
		}
		defer stop()
		fmt.Fprintf(stderr, "qoebench: serving /metrics, /debug/vars, /debug/pprof/ on http://%s\n", bound)
	}

	if *storeDir != "" {
		if err := session.OpenStore(*storeDir); err != nil {
			fmt.Fprintf(stderr, "qoebench: -store: %v\n", err)
			return 2
		}
		// Deferred (not inline per mode) so every exit path — including
		// serve-mode shutdown — flushes queued writes to disk.
		defer func() {
			if err := session.CloseStore(); err != nil {
				fmt.Fprintf(stderr, "qoebench: -store close: %v\n", err)
			}
		}()
	}

	if *serveAddr != "" {
		if *exp != "" || *sweep || *recommend {
			fmt.Fprintln(stderr, "qoebench: -serve runs a service; it is exclusive with -exp/-sweep/-recommend")
			return 2
		}
		return runServe(*serveAddr, session, opt, stderr)
	}

	if *sweep || *recommend {
		if *exp != "" {
			fmt.Fprintln(stderr, "qoebench: -sweep/-recommend and -exp are mutually exclusive")
			return 2
		}
		if *sweep && *recommend {
			fmt.Fprintln(stderr, "qoebench: -sweep and -recommend are mutually exclusive")
			return 2
		}
		f := sweepFlags{
			network: *network, workloads: *workloads, mix: *mix, dir: *dir,
			buffers: *buffers, probes: *probes, bufUp: *bufUp,
			aqm: *aqm, cc: *cc, jitter: *jitter,
			upRate: *upRate, downRate: *downRate,
			clientDelay: *clientDelay, serverDelay: *serverDelay,
			link: *linkKind, stations: *stations,
			wifiRetry: *wifiRetry, wifiAgg: *wifiAgg, reorder: *reorder,
		}
		if *recommend {
			return runRecommend(ctx, session, opt, f, *target, *threshold, *jsonOut, stdout, stderr)
		}
		return runSweep(ctx, session, opt, f, *jsonOut, stdout, stderr)
	}

	if *exp == "" {
		fmt.Fprintln(stderr, "qoebench: -exp, -sweep, or -recommend required (or -list)")
		return 2
	}
	ids := splitList(*exp)
	if len(ids) == 0 {
		fmt.Fprintf(stderr, "qoebench: -exp %q names no experiments\n", *exp)
		return 2
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = bufferqoe.Experiments()
	}

	start := time.Now()
	outcomes := session.RunAllCtx(ctx, ids, opt)
	total := time.Since(start)

	var failed []bufferqoe.Outcome
	report := jsonReport{ElapsedS: total.Seconds()}
	for _, oc := range outcomes {
		je := jsonExperiment{ID: oc.ID, OK: oc.Err == nil, ElapsedS: oc.Elapsed.Seconds()}
		if oc.Err != nil {
			je.Error = oc.Err.Error()
			failed = append(failed, oc)
		} else {
			je.Text = oc.Result.Text
			if !*jsonOut {
				fmt.Fprintf(stdout, "# %s (%.1fs)\n%s\n", oc.ID, oc.Elapsed.Seconds(), oc.Result.Text)
			}
		}
		report.Experiments = append(report.Experiments, je)
	}

	st := session.Stats()
	report.Stats = statsOf(session)
	if *jsonOut {
		report.Telemetry = telemetryOf(session)
		emitJSON(stdout, stderr, report)
	} else {
		fmt.Fprintf(stdout, "# summary: %d/%d experiments ok in %.1fs (%d workers; %d cells simulated, %d cache hits)\n",
			len(outcomes)-len(failed), len(outcomes), total.Seconds(),
			st.Workers, st.Misses, st.Hits)
	}
	if len(failed) > 0 {
		for _, oc := range failed {
			fmt.Fprintf(stderr, "qoebench: FAILED %s after %.1fs: %v\n",
				oc.ID, oc.Elapsed.Seconds(), oc.Err)
		}
		return 1
	}
	return 0
}

type sweepFlags struct {
	network, workloads, mix, dir, buffers, probes, aqm, cc string
	bufUp                                                  int
	jitter                                                 time.Duration
	upRate, downRate                                       float64
	clientDelay, serverDelay                               time.Duration
	link                                                   string
	stations, wifiRetry, wifiAgg                           int
	reorder                                                float64
}

// compileSweep resolves the shared scenario/axis parameters of the
// -sweep and -recommend modes (and of every -serve request, which
// reuses the same axes over HTTP). It is the single authority on how
// the flat flag surface maps onto the Scenario/Probe API.
func (f sweepFlags) compileSweep() (scenarios []bufferqoe.Scenario, bufs []int, probes []bufferqoe.Probe, err error) {
	var net bufferqoe.Network
	switch f.network {
	case "access", "":
		net = bufferqoe.Access
	case "backbone":
		net = bufferqoe.Backbone
	default:
		return nil, nil, nil, fmt.Errorf("unknown network %q (want access or backbone)", f.network)
	}

	link, err := f.compileLink()
	if err != nil {
		return nil, nil, nil, err
	}

	if f.mix != "" {
		// A custom mix replaces the preset/direction axes: the mix's
		// own Up/Down components say where the congestion goes.
		if f.workloads != "noBG" {
			return nil, nil, nil, fmt.Errorf("a custom mix and workload presets are mutually exclusive")
		}
		if f.dir != "down" && f.dir != "" {
			return nil, nil, nil, fmt.Errorf("direction %s: a mix names its own directions (up:/down: sections)", f.dir)
		}
		w, err := bufferqoe.ParseMix(f.mix)
		if err != nil {
			return nil, nil, nil, err
		}
		scenarios = append(scenarios, bufferqoe.Scenario{
			Network: net, Link: link, Mix: w, BufferUp: f.bufUp,
			AQM: bufferqoe.AQM(f.aqm), CC: bufferqoe.CC(f.cc), Jitter: f.jitter,
		})
	} else {
		dir := bufferqoe.Direction(f.dir)
		if net == bufferqoe.Backbone && link == nil {
			// The backbone has no congestion-direction axis; reject a
			// non-default -dir instead of silently measuring downstream.
			if dir != bufferqoe.Down && dir != "" {
				return nil, nil, nil, fmt.Errorf("direction %s: the backbone is congested downstream only", f.dir)
			}
			dir = ""
		}
		for _, wl := range splitList(f.workloads) {
			scenarios = append(scenarios, bufferqoe.Scenario{
				Network: net, Link: link, Workload: wl, Direction: dir, BufferUp: f.bufUp,
				AQM: bufferqoe.AQM(f.aqm), CC: bufferqoe.CC(f.cc), Jitter: f.jitter,
			})
		}
	}

	bufs, err = parseBuffers(f.buffers, net)
	if err != nil {
		return nil, nil, nil, err
	}
	probes, err = parseProbes(f.probes)
	if err != nil {
		return nil, nil, nil, err
	}
	return scenarios, bufs, probes, nil
}

// compileLink resolves the link-axis flags into a custom Link, or nil
// for the network's stock bottleneck. -link wifi starts from the
// WifiLink preset and overlays any explicit rate/delay/wifi knobs;
// the wired default only becomes a custom link when a rate, delay, or
// reorder flag asks for one.
func (f sweepFlags) compileLink() (*bufferqoe.Link, error) {
	switch f.link {
	case "", "wired":
		if f.stations != 0 || f.wifiRetry != 0 || f.wifiAgg != 0 {
			return nil, fmt.Errorf("-stations/-wifiretry/-wifiagg configure the wifi MAC; add -link wifi")
		}
		if f.upRate == 0 && f.downRate == 0 && f.clientDelay == 0 && f.serverDelay == 0 && f.reorder == 0 {
			return nil, nil
		}
		return &bufferqoe.Link{
			UpRate: f.upRate, DownRate: f.downRate,
			ClientDelay: f.clientDelay, ServerDelay: f.serverDelay,
			Reorder: f.reorder,
		}, nil
	case "wifi":
		st := f.stations
		if st == 0 {
			st = 4
		}
		l := bufferqoe.WifiLink(st)
		if f.upRate != 0 {
			l.UpRate = f.upRate
		}
		if f.downRate != 0 {
			l.DownRate = f.downRate
		}
		if f.clientDelay != 0 {
			l.ClientDelay = f.clientDelay
		}
		if f.serverDelay != 0 {
			l.ServerDelay = f.serverDelay
		}
		l.Wifi.RetryLimit = f.wifiRetry
		l.Wifi.MaxAggFrames = f.wifiAgg
		l.Reorder = f.reorder
		return &l, nil
	default:
		return nil, fmt.Errorf("unknown -link %q (want wired or wifi)", f.link)
	}
}

// compileSweepFlags is the CLI wrapper around compileSweep: a
// flag-level mistake returns exit code 2 via ok=false after printing
// the error.
func compileSweepFlags(f sweepFlags, stderr io.Writer) (scenarios []bufferqoe.Scenario, bufs []int, probes []bufferqoe.Probe, ok bool) {
	scenarios, bufs, probes, err := f.compileSweep()
	if err != nil {
		fmt.Fprintf(stderr, "qoebench: %v\n", err)
		return nil, nil, nil, false
	}
	return scenarios, bufs, probes, true
}

func runSweep(ctx context.Context, session *bufferqoe.Session, opt bufferqoe.Options, f sweepFlags, jsonOut bool, stdout, stderr io.Writer) int {
	scenarios, bufs, probes, ok := compileSweepFlags(f, stderr)
	if !ok {
		return 2
	}
	start := time.Now()
	grid, err := session.SweepCtx(ctx, bufferqoe.Sweep{Scenarios: scenarios, Buffers: bufs, Probes: probes}, opt)
	if err != nil {
		fmt.Fprintf(stderr, "qoebench: %v\n", err)
		if errors.Is(err, bufferqoe.ErrCanceled) {
			fmt.Fprintln(stderr, "qoebench: deadline exceeded; queued cells abandoned (raise -timeout or shrink the grid)")
		}
		return 1
	}
	total := time.Since(start)

	st := session.Stats()
	if jsonOut {
		emitJSON(stdout, stderr, jsonReport{
			Sweep:     grid,
			Stats:     statsOf(session),
			Telemetry: telemetryOf(session),
			ElapsedS:  total.Seconds(),
		})
		return 0
	}
	fmt.Fprint(stdout, grid.Text())
	fmt.Fprintf(stdout, "# summary: %d cells in %.1fs (%d workers; %d simulated, %d cache hits)\n",
		len(grid.Cells), total.Seconds(), st.Workers, st.Misses, st.Hits)
	return 0
}

// runRecommend searches the buffer axis instead of sweeping it: the
// first -workloads entry names the scenario, -buffers (or the paper's
// sweep bracketed by the link's BDP) is the candidate axis, and
// -target picks the optimization goal.
func runRecommend(ctx context.Context, session *bufferqoe.Session, opt bufferqoe.Options, f sweepFlags, target string, threshold float64, jsonOut bool, stdout, stderr io.Writer) int {
	scenarios, bufs, probes, ok := compileSweepFlags(f, stderr)
	if !ok {
		return 2
	}
	if len(scenarios) != 1 {
		fmt.Fprintf(stderr, "qoebench: -recommend takes exactly one workload, got %q\n", f.workloads)
		return 2
	}
	var tgt bufferqoe.Target
	switch target {
	case "min-mos", "":
		tgt = bufferqoe.MinBufferMeetingMOS
	case "max-mos":
		tgt = bufferqoe.MaxAggregateMOS
	default:
		fmt.Fprintf(stderr, "qoebench: unknown -target %q (want min-mos or max-mos)\n", target)
		return 2
	}
	if f.buffers == "" {
		bufs = nil // let Recommend bracket the paper's sweep with the BDP
	}

	start := time.Now()
	rec, err := session.Recommend(ctx, bufferqoe.RecommendSpec{
		Scenario: scenarios[0], Probes: probes, Buffers: bufs,
		Target: tgt, Threshold: threshold,
	}, opt)
	if err != nil {
		fmt.Fprintf(stderr, "qoebench: %v\n", err)
		return 1
	}
	total := time.Since(start)

	st := session.Stats()
	if jsonOut {
		emitJSON(stdout, stderr, jsonReport{
			Recommend: rec,
			Stats:     statsOf(session),
			Telemetry: telemetryOf(session),
			ElapsedS:  total.Seconds(),
		})
		return 0
	}
	fmt.Fprintf(stdout, "recommended buffer: %d packets (aggregate MOS %.2f, threshold met: %v)\n",
		rec.Buffer, rec.Score, rec.Met)
	for _, c := range rec.Cells {
		fmt.Fprintf(stdout, "  %-12s %s\n", c.Probe, c.Rating)
	}
	fmt.Fprintf(stdout, "nearest paper scheme: %s (%d packets, max delay %s)\n",
		rec.Scheme.Name, rec.Scheme.Packets, rec.Scheme.MaxDelay)
	fmt.Fprintf(stdout, "# summary: evaluated %d of %d grid cells (buffers tried: %v) in %.1fs (%d simulated, %d cache hits)\n",
		rec.CellsEvaluated, rec.GridCells, rec.BuffersTried, total.Seconds(), st.Misses, st.Hits)
	return 0
}

// benchEntry is one benchmark's measurement in the -benchjson output.
type benchEntry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchReport is the envelope written to the -benchjson file; BENCH_*
// trajectory artifacts embed snapshots of this shape.
type benchReport struct {
	GeneratedBy string       `json:"generated_by"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

// runBenchJSON runs the canonical benchmarks from internal/bench via
// testing.Benchmark and writes the measurements as JSON, so the perf
// trajectory can be recorded per PR without a test harness.
func runBenchJSON(path string, stdout, stderr io.Writer) int {
	report := benchReport{
		GeneratedBy: "qoebench -benchjson",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	for _, bm := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"SimCore", bench.SimCore},
		{"SimCoreHandler", bench.SimCoreHandler},
		{"LinkForward", bench.LinkForward},
		{"WholeCell", bench.WholeCell},
		{"WholeCellTelemetry", bench.WholeCellTelemetry},
		{"TestbedBuild", bench.TestbedBuild},
		{"WifiCell", bench.WifiCell},
		{"PacedCell", bench.PacedCell},
		{"StatsAccumulate", bench.StatsAccumulate},
		{"CellRepLoop", bench.CellRepLoop},
	} {
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			// testing.Benchmark returns the zero result when the
			// benchmark aborts (b.Fatal); a zero row would report 0
			// allocs/op and pass regression budgets it should fail.
			fmt.Fprintf(stderr, "qoebench: benchmark %s failed (zero result)\n", bm.name)
			return 1
		}
		e := benchEntry{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Benchmarks = append(report.Benchmarks, e)
		fmt.Fprintf(stdout, "%-16s %10d ops %14.1f ns/op %10d B/op %8d allocs/op\n",
			e.Name, e.N, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "qoebench: %v\n", err)
		return 1
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(stderr, "qoebench: encoding %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "# wrote %s\n", path)
	return 0
}

func emitJSON(stdout, stderr io.Writer, report jsonReport) {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(stderr, "qoebench: encoding JSON: %v\n", err)
	}
}

// printList prints every discoverable axis — experiments, networks
// with their paper buffer sweeps, workload presets with component
// breakdowns, probes, AQMs, congestion controls, and the custom-mix
// grammar — so valid flag values never require reading source.
func printList(stdout io.Writer) {
	fmt.Fprintln(stdout, "experiments (-exp):")
	for _, id := range bufferqoe.Experiments() {
		fmt.Fprintf(stdout, "  %s\n", id)
	}
	fmt.Fprintln(stdout, "networks (-network), with the paper's buffer sweeps (-buffers default):")
	fmt.Fprintf(stdout, "  %-9s DSL 1 Mbit/s up / 16 Mbit/s down (Figure 3a); buffers: %s\n",
		"access", joinInts(bufferqoe.BufferSizes(bufferqoe.Access)))
	fmt.Fprintf(stdout, "  %-9s OC3 155 Mbit/s, 30 ms delay (Figure 3b); buffers: %s\n",
		"backbone", joinInts(bufferqoe.BufferSizes(bufferqoe.Backbone)))
	for _, net := range []bufferqoe.Network{bufferqoe.Access, bufferqoe.Backbone} {
		fmt.Fprintf(stdout, "workload presets (-workloads, %s):\n", net)
		for _, name := range bufferqoe.Scenarios(net) {
			w, err := bufferqoe.PresetWorkload(net, name)
			if err != nil {
				continue
			}
			fmt.Fprintf(stdout, "  %-15s %s\n", name, w)
		}
	}
	fmt.Fprintln(stdout, "probes (-probes): voip, web, video:SD, video:HD")
	fmt.Fprintln(stdout, "aqms (-aqm): droptail (default), codel, fq-codel, red, ared, pie")
	fmt.Fprintln(stdout, "congestion controls (-cc): default (cubic on access, reno on backbone), cubic, reno, bic, bbr")
	fmt.Fprintln(stdout, "links (-link): wired (default; customize with -uprate/-downrate/-clientdelay/-serverdelay), wifi (802.11 MAC last hop; -stations, -wifiretry, -wifiagg); -reorder adds packet reordering to either")
	fmt.Fprintln(stdout, `mix grammar (-mix): "up:long=2;down:web=16x3/1.5s" — components long=n[xm] (bulk flows) and web=n[xm]/think (web sessions), sections joined by ';', optional scale=n`)
	fmt.Fprintln(stdout, "hotpath-audited packages (//qoe:hotpath, enforced by 'go vet -vettool=qoelint'): internal/sim (event dispatch, timer heap), internal/netem (link transmit/deliver), internal/tcp (segment emit/receive), internal/mac (802.11 TXOP), internal/telemetry (record primitives)")
}

func joinInts(xs []int) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	return b.String()
}

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseBuffers(s string, net bufferqoe.Network) ([]int, error) {
	if s == "" {
		return bufferqoe.BufferSizes(net), nil
	}
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad -buffers entry %q: %v", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseProbes(s string) ([]bufferqoe.Probe, error) {
	var out []bufferqoe.Probe
	for _, part := range splitList(s) {
		media, profile, _ := strings.Cut(part, ":")
		switch media {
		case "voip", "web":
			if profile != "" {
				return nil, fmt.Errorf("probe %q: only video takes a profile", part)
			}
			m := bufferqoe.VoIP
			if media == "web" {
				m = bufferqoe.Web
			}
			out = append(out, bufferqoe.Probe{Media: m})
		case "video":
			out = append(out, bufferqoe.Probe{Media: bufferqoe.Video, Profile: profile})
		default:
			return nil, fmt.Errorf("unknown probe %q (want voip, web, video[:SD|:HD])", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no probes given")
	}
	return out, nil
}
