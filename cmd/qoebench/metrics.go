package main

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"bufferqoe"
)

// expvarCol backs the process-wide "qoe" expvar. expvar.Publish
// panics on duplicate names, so the var is published once and reads
// whichever collector the current run installed.
var (
	expvarCol  atomic.Pointer[bufferqoe.Collector]
	expvarOnce sync.Once
)

func publishExpvar(col *bufferqoe.Collector) {
	expvarCol.Store(col)
	expvarOnce.Do(func() {
		expvar.Publish("qoe", expvar.Func(func() any {
			return expvarCol.Load().Metrics()
		}))
	})
}

// newMetricsMux builds the -metrics-addr handler:
//
//	/metrics       Prometheus text exposition of the run's collector
//	/debug/vars    expvar JSON (cmdline, memstats, and a "qoe" block)
//	/debug/pprof/  the standard pprof index, profiles, and traces
//
// CPU profiles taken during a sweep carry the engine's pprof labels
// (qoe_testbed/qoe_scenario/qoe_media/qoe_buffer), so samples
// attribute to scenario coordinates.
func newMetricsMux(col *bufferqoe.Collector) *http.ServeMux {
	publishExpvar(col)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		col.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startMetricsServer serves newMetricsMux on addr in the background
// and returns the bound address (useful with ":0") and a shutdown
// function.
func startMetricsServer(addr string, col *bufferqoe.Collector) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: newMetricsMux(col)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return ln.Addr().String(), func() { srv.Close() }, nil
}
