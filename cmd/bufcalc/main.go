// Command bufcalc evaluates the paper's buffer sizing schemes for an
// arbitrary link, and reproduces Table 2 when run without flags.
//
// Usage:
//
//	bufcalc                              # Table 2
//	bufcalc -rate 16e6 -rtt 50ms -n 16   # custom link
package main

import (
	"flag"
	"fmt"
	"time"

	"bufferqoe"
)

func main() {
	var (
		rate = flag.Float64("rate", 0, "link rate in bits/s (0 = print Table 2)")
		rtt  = flag.Duration("rtt", 60*time.Millisecond, "round-trip time")
		n    = flag.Int("n", 1, "expected concurrent TCP flows")
	)
	flag.Parse()

	if *rate == 0 {
		res, err := bufferqoe.Run("table2", bufferqoe.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Print(res.Text)
		return
	}
	fmt.Printf("link: %.0f bit/s, RTT %v, %d flows\n\n", *rate, *rtt, *n)
	fmt.Printf("%-24s %10s %14s\n", "scheme", "packets", "max q delay")
	for _, s := range bufferqoe.SizingSchemes(*rate, *rtt, *n) {
		fmt.Printf("%-24s %10d %14v\n", s.Name, s.Packets, s.MaxDelay.Round(time.Millisecond/10))
	}
}
