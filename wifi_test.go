package bufferqoe

import (
	"bytes"
	"testing"
	"time"

	"bufferqoe/internal/sizing"
)

// wifiSweep is the wifi/BBR grid the determinism tests below pin: an
// 802.11 last hop with contention, paced model-based congestion
// control, and a reordering variant, across two buffer sizes and two
// probe media.
func wifiSweep() Sweep {
	wifi := WifiLink(8)
	reorder := WifiLink(4)
	reorder.Reorder = 0.02
	return Sweep{
		Scenarios: []Scenario{
			{Name: "wifi-bbr", Link: &wifi, Workload: "long-many", Direction: Down, CC: BBR},
			{Name: "wifi-reorder", Link: &reorder, CC: BBR},
		},
		Buffers: []int{16, 64},
		Probes:  []Probe{{Media: VoIP}, {Media: Web}},
	}
}

func wifiOpts() Options {
	return Options{Seed: 17, Duration: 4 * time.Second, Warmup: 1 * time.Second, Reps: 1, ClipSeconds: 1}
}

// TestWifiBBRSweepDeterminism is the new subsystem's engine-contract
// test: wifi/BBR cells must render bit-identically when simulated
// sequentially, fanned out across workers, answered from the warm
// in-memory cache, and answered from a warm persistent store.
func TestWifiBBRSweepDeterminism(t *testing.T) {
	dir := t.TempDir()

	s := NewSession()
	if err := s.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	s.SetParallelism(1)
	sequential, err := s.Sweep(wifiSweep(), wifiOpts())
	if err != nil {
		t.Fatal(err)
	}
	cold := s.Stats()
	if cold.Misses == 0 || cold.StoreWrites != cold.Misses {
		t.Fatalf("cold run stats = %+v", cold)
	}
	if err := s.CloseStore(); err != nil {
		t.Fatal(err)
	}

	p := NewSession()
	p.SetParallelism(8)
	parallel, err := p.Sweep(wifiSweep(), wifiOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gridJSON(t, sequential), gridJSON(t, parallel)) {
		t.Fatalf("parallel wifi grid differs from sequential:\n%s\n---\n%s",
			gridJSON(t, sequential), gridJSON(t, parallel))
	}

	// Warm cache: same session, zero new computes.
	before := p.Stats()
	warm, err := p.Sweep(wifiSweep(), wifiOpts())
	if err != nil {
		t.Fatal(err)
	}
	if after := p.Stats(); after.Misses != before.Misses {
		t.Fatalf("warm-cache run simulated %d new cells", after.Misses-before.Misses)
	}
	if !bytes.Equal(gridJSON(t, sequential), gridJSON(t, warm)) {
		t.Fatal("warm-cache wifi grid differs from cold grid")
	}

	// Warm store: a fresh session sharing the directory answers every
	// cell from disk.
	w := NewSession()
	if err := w.OpenStore(dir); err != nil {
		t.Fatal(err)
	}
	defer w.CloseStore()
	stored, err := w.Sweep(wifiSweep(), wifiOpts())
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Misses != 0 || st.StoreHits != cold.Misses {
		t.Fatalf("warm-store run stats = %+v, want 0 misses / %d store hits", st, cold.Misses)
	}
	if !bytes.Equal(gridJSON(t, sequential), gridJSON(t, stored)) {
		t.Fatal("warm-store wifi grid differs from cold grid")
	}
}

// TestClaimWiredBDPOverbuffersWifiBBR is the headline demonstration
// of this subsystem: the paper's Table 2 BDP rule, applied to the
// wifi link's nominal 65 Mbit/s PHY rate and 34 ms base RTT, asks for
// ~185 packets — and on a wired link running loss-based congestion
// control that buffer genuinely pays (CUBIC needs the queue for
// throughput). On the 802.11 last hop under contention with paced
// BBR, the same recommendation is pure over-buffering: the small
// buffer is at least as good on every probe and the BDP buffer
// clearly worse on web PLT, so the wired sizing rule and the
// wifi/BBR optimum disagree.
func TestClaimWiredBDPOverbuffersWifiBBR(t *testing.T) {
	wifi := WifiLink(8)
	wired := wifi
	wired.Wifi = Wifi{} // same rates and delays, wired service process
	bdp := sizing.BDPPackets(wifi.DownRate, 2*(wifi.ClientDelay+wifi.ServerDelay))
	if bdp < 100 {
		t.Fatalf("BDP of the wifi preset = %d packets; the demonstration needs a large wired recommendation", bdp)
	}
	sw := Sweep{
		Scenarios: []Scenario{
			{Name: "wired-cubic", Link: &wired, Workload: "long-many", Direction: Down},
			{Name: "wifi-bbr", Link: &wifi, Workload: "long-many", Direction: Down, CC: BBR},
		},
		Buffers: []int{16, bdp},
		Probes:  []Probe{{Media: VoIP}, {Media: Web}},
	}
	s := NewSession()
	g, err := s.Sweep(sw, Options{Seed: 11, Duration: 6 * time.Second, Warmup: 2 * time.Second, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	cell := func(scen, probe string, buf int) SweepCell {
		c, ok := g.Cell(scen, probe, buf)
		if !ok {
			t.Fatalf("missing %s/%s/%d cell", scen, probe, buf)
		}
		return c
	}

	// Wired, loss-based: the BDP buffer earns its size — shrinking it
	// to 16 packets costs web QoE badly.
	wiredSmall, wiredBDP := cell("wired-cubic", "web", 16), cell("wired-cubic", "web", bdp)
	if wiredSmall.Value < 1.5*wiredBDP.Value {
		t.Fatalf("wired CUBIC web PLT: 16 pkts %.2fs vs BDP %.2fs — the wired BDP rule should pay here",
			wiredSmall.Value, wiredBDP.Value)
	}

	// WiFi + BBR: the same BDP recommendation over-buffers. The small
	// buffer wins web PLT outright and concedes nothing on VoIP.
	wifiSmall, wifiBDP := cell("wifi-bbr", "web", 16), cell("wifi-bbr", "web", bdp)
	if wifiBDP.Value < 1.3*wifiSmall.Value {
		t.Fatalf("wifi/BBR web PLT: BDP %.2fs vs 16 pkts %.2fs — the BDP buffer should be clearly worse",
			wifiBDP.Value, wifiSmall.Value)
	}
	if vSmall, vBDP := cell("wifi-bbr", "voip", 16), cell("wifi-bbr", "voip", bdp); vSmall.MOS < vBDP.MOS {
		t.Fatalf("wifi/BBR VoIP MOS: 16 pkts %.2f vs BDP %.2f — the small buffer should concede nothing",
			vSmall.MOS, vBDP.MOS)
	}
}

// TestWifiScenarioValidation: the facade rejects malformed wifi and
// reorder configurations instead of silently folding them onto wired
// cells.
func TestWifiScenarioValidation(t *testing.T) {
	bad := []Link{
		{Wifi: Wifi{Stations: -1}},
		{Wifi: Wifi{RetryLimit: 3}},               // retry without stations
		{Wifi: Wifi{MaxAggFrames: 8}},             // aggregation without stations
		{Wifi: Wifi{Stations: 2, RetryLimit: -1}}, // negative retry
		{Wifi: Wifi{Stations: 2, MaxAggFrames: -1}},
		{Reorder: -0.1},
		{Reorder: 1},
	}
	for _, l := range bad {
		l := l
		sc := Scenario{Link: &l}
		if err := sc.Validate(Probe{Media: VoIP}); err == nil {
			t.Fatalf("bad link %+v accepted", l)
		}
	}
	wifi := WifiLink(4)
	if err := (Scenario{Network: Backbone, Link: &wifi}).Validate(Probe{Media: VoIP}); err == nil {
		t.Fatal("wifi link on the backbone accepted")
	}
	good := WifiLink(4)
	good.Reorder = 0.05
	if err := (Scenario{Link: &good, CC: BBR}).Validate(Probe{Media: VoIP}); err != nil {
		t.Fatalf("good wifi+reorder+bbr scenario rejected: %v", err)
	}
}
