// Benchmarks: one per table and figure of the paper's evaluation,
// plus the ablations. Each benchmark regenerates its artifact on a
// scaled-down grid (short measurement windows, one repetition per
// cell) — the same code path the CLI uses at full scale. Run with:
//
//	go test -bench=. -benchmem
package bufferqoe_test

import (
	"testing"
	"time"

	"bufferqoe"
)

// benchOpts shrinks every experiment to benchmark scale.
func benchOpts() bufferqoe.Options {
	return bufferqoe.Options{
		Seed:        42,
		Duration:    3 * time.Second,
		Warmup:      2 * time.Second,
		Reps:        1,
		ClipSeconds: 1,
		CDNFlows:    50000,
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		res, err := bufferqoe.Run(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable1 regenerates the workload characterization (measured
// utilization/loss per Table 1 scenario at BDP buffers).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates the buffer-size/queueing-delay table.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig1a regenerates the min/avg/max sRTT PDFs of the CDN
// study.
func BenchmarkFig1a(b *testing.B) { benchExperiment(b, "fig1a") }

// BenchmarkFig1b regenerates the min-vs-max RTT 2D histogram.
func BenchmarkFig1b(b *testing.B) { benchExperiment(b, "fig1b") }

// BenchmarkFig1c regenerates the estimated queueing-delay PDFs by
// access technology.
func BenchmarkFig1c(b *testing.B) { benchExperiment(b, "fig1c") }

// BenchmarkFig4 regenerates all three mean-queueing-delay heatmaps
// (downstream, bidirectional, upstream workloads).
func BenchmarkFig4(b *testing.B) {
	opt := benchOpts()
	for i := 0; i < b.N; i++ {
		for _, id := range []string{"fig4a", "fig4b", "fig4c"} {
			if _, err := bufferqoe.Run(id, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig5 regenerates the link-utilization boxplots.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7a regenerates the access VoIP heatmap under download
// congestion.
func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7a") }

// BenchmarkFig7b regenerates the access VoIP heatmap under upload
// congestion (the bufferbloat case).
func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7b") }

// BenchmarkFig7c regenerates the combined up+down VoIP scenario the
// paper describes in §7.2 but does not plot.
func BenchmarkFig7c(b *testing.B) { benchExperiment(b, "fig7c") }

// BenchmarkFig8 regenerates the backbone VoIP heatmap.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9a regenerates the access video heatmap (SD+HD).
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }

// BenchmarkFig9b regenerates the backbone video heatmap (SD+HD).
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, "fig9b") }

// BenchmarkFig10a regenerates the access WebQoE heatmap under
// download congestion.
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }

// BenchmarkFig10b regenerates the access WebQoE heatmap under upload
// congestion.
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }

// BenchmarkFig10c regenerates the combined up+down WebQoE scenario of
// §9.2 ("not shown" in the paper).
func BenchmarkFig10c(b *testing.B) { benchExperiment(b, "fig10c") }

// BenchmarkFig11 regenerates the backbone WebQoE heatmap.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkAblationAQM swaps CoDel/RED into the bloated uplink.
func BenchmarkAblationAQM(b *testing.B) { benchExperiment(b, "abl-aqm") }

// BenchmarkAblationCC compares Reno vs CUBIC background traffic.
func BenchmarkAblationCC(b *testing.B) { benchExperiment(b, "abl-ccalgo") }

// BenchmarkAblationLoadAware evaluates load-dependent buffer sizing.
func BenchmarkAblationLoadAware(b *testing.B) { benchExperiment(b, "abl-loadaware") }

// BenchmarkAblationSmoothing evaluates video sender smoothing.
func BenchmarkAblationSmoothing(b *testing.B) { benchExperiment(b, "abl-smoothing") }

// BenchmarkAblationPlayout compares fixed vs adaptive jitter buffers.
func BenchmarkAblationPlayout(b *testing.B) { benchExperiment(b, "abl-playout") }

// BenchmarkAblationSACK compares SACK vs NewReno background flows at
// the bloated uplink.
func BenchmarkAblationSACK(b *testing.B) { benchExperiment(b, "abl-sack") }

// BenchmarkExtHTTPVideo runs the Section 10 HTTP-video consistency
// check.
func BenchmarkExtHTTPVideo(b *testing.B) { benchExperiment(b, "ext-httpvideo") }

// BenchmarkExtClips compares the three content classes (Section 8.3).
func BenchmarkExtClips(b *testing.B) { benchExperiment(b, "ext-clips") }

// BenchmarkAblationBIC compares Reno vs BIC vs CUBIC background
// traffic (the paper's full access-era stack list).
func BenchmarkAblationBIC(b *testing.B) { benchExperiment(b, "abl-bic") }

// BenchmarkAblationByteQueue compares packet- vs byte-counted uplink
// buffers.
func BenchmarkAblationByteQueue(b *testing.B) { benchExperiment(b, "abl-bytequeue") }

// BenchmarkAblationECN pairs ECN endpoints with marking CoDel at the
// bloated uplink.
func BenchmarkAblationECN(b *testing.B) { benchExperiment(b, "abl-ecn") }

// BenchmarkAblationIQX rescores the web cells under the exponential
// IQX mapping.
func BenchmarkAblationIQX(b *testing.B) { benchExperiment(b, "abl-iqx") }

// BenchmarkAblationIW10 compares initial windows 3 and 10 (the
// engineering change of paper reference [18]).
func BenchmarkAblationIW10(b *testing.B) { benchExperiment(b, "abl-iw10") }

// BenchmarkExtABR compares DASH adaptation against fixed-rate HTTP
// video across the backbone load ladder.
func BenchmarkExtABR(b *testing.B) { benchExperiment(b, "ext-abr") }

// BenchmarkExtFQCoDelWeb isolates the flow-queueing benefit for a
// thin web flow crossing a congested uplink.
func BenchmarkExtFQCoDelWeb(b *testing.B) { benchExperiment(b, "ext-fqcodel-web") }

// BenchmarkExtJitter sweeps WiFi-like last-hop jitter (the dimension
// the paper's §5.1 excludes).
func BenchmarkExtJitter(b *testing.B) { benchExperiment(b, "ext-jitter") }

// BenchmarkExtParWeb compares the paper's sequential wget fetch with
// a 6-connection browser-style fetch.
func BenchmarkExtParWeb(b *testing.B) { benchExperiment(b, "ext-parweb") }

// BenchmarkExtPSNR verifies the paper's PSNR-similar-to-SSIM omission
// argument.
func BenchmarkExtPSNR(b *testing.B) { benchExperiment(b, "ext-psnr") }

// BenchmarkExtRecovery quantifies the §8.4 ARQ/FEC quality headroom.
func BenchmarkExtRecovery(b *testing.B) { benchExperiment(b, "ext-recovery") }
