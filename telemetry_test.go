package bufferqoe

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestSessionTelemetryEndToEnd: a collector attached to a session
// observes a sweep at every layer — engine counters, per-cell phase
// breakdowns, simulator metrics, sweep progress — and reconciles with
// EngineStats; the Prometheus rendering and the JSON-lines trace both
// carry the same run.
func TestSessionTelemetryEndToEnd(t *testing.T) {
	sw := streamSweepSpec()
	o := sweepOpts()
	total := len(sw.Scenarios) * len(sw.Buffers) * len(sw.Probes)

	col := NewCollector()
	var trace bytes.Buffer
	col.TraceTo(&trace)
	s := NewSession()
	s.SetCollector(col)

	grid, err := s.Sweep(sw, o)
	if err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	m := s.Metrics()
	if m.CellsSimulated == 0 || m.CellsSimulated != st.Misses {
		t.Fatalf("CellsSimulated = %d, engine misses %d", m.CellsSimulated, st.Misses)
	}
	if m.CacheHits != st.Hits {
		t.Fatalf("CacheHits = %d, engine hits %d", m.CacheHits, st.Hits)
	}
	if m.SweepCells != uint64(total) {
		t.Fatalf("SweepCells = %d, want %d", m.SweepCells, total)
	}
	if m.PhaseCells != m.CellsSimulated {
		t.Fatalf("PhaseCells = %d, want one per simulated cell (%d)", m.PhaseCells, m.CellsSimulated)
	}
	if m.CellWallCount != m.CellsSimulated || m.CellWallMeanSeconds <= 0 {
		t.Fatalf("cell wall histogram: count %d mean %v", m.CellWallCount, m.CellWallMeanSeconds)
	}
	if m.SimEvents == 0 || m.PacketRecycles == 0 || m.HeapHighWater == 0 {
		t.Fatalf("sim metrics empty: %+v", m)
	}
	if m.PhaseSeconds["sim"] <= 0 {
		t.Fatalf("no simulation phase time recorded: %v", m.PhaseSeconds)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 || st.Waiters != 0 {
		t.Fatalf("gauges nonzero at idle: %+v", st)
	}

	var prom bytes.Buffer
	if err := col.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"qoe_cells_simulated_total", "qoe_cell_wall_seconds_bucket", "qoe_sim_events_total"} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus output missing %s:\n%s", want, prom.String())
		}
	}

	lines := 0
	sc := bufio.NewScanner(&trace)
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %d not JSON: %v", lines, err)
		}
		if ev["cell"] == "" || ev["kind"] != "cell" {
			t.Fatalf("trace line %d malformed: %v", lines, ev)
		}
	}
	if uint64(lines) != m.CellsSimulated {
		t.Fatalf("trace has %d events, want one per simulated cell (%d)", lines, m.CellsSimulated)
	}

	// Observational-only: an unobserved session produces bit-identical
	// cells for the same sweep.
	plain, err := NewSession().Sweep(sw, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Cells {
		if plain.Cells[i] != grid.Cells[i] {
			t.Fatalf("collector changed cell %d: %+v vs %+v", i, grid.Cells[i], plain.Cells[i])
		}
	}
}

// TestMetricsWithoutCollector: Session.Metrics still reports the
// engine-derived fields when no collector is attached.
func TestMetricsWithoutCollector(t *testing.T) {
	s := NewSession()
	if _, err := s.Sweep(streamSweepSpec(), sweepOpts()); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	st := s.Stats()
	if m.CellsSimulated != st.Misses || m.CellsSimulated == 0 {
		t.Fatalf("CellsSimulated = %d, engine misses %d", m.CellsSimulated, st.Misses)
	}
	if m.PhaseCells != 0 || m.SweepCells != 0 || m.UptimeSeconds != 0 {
		t.Fatalf("collector-only fields populated without a collector: %+v", m)
	}
}

// TestOptionsCollectorPerRun: a collector passed per run via Options
// observes that run's cells without being attached to the session.
func TestOptionsCollectorPerRun(t *testing.T) {
	col := NewCollector()
	o := sweepOpts()
	o.Collector = col
	s := NewSession()
	if _, err := s.Sweep(streamSweepSpec(), sweepOpts()); err != nil { // warm, unobserved
		t.Fatal(err)
	}
	if _, err := s.Sweep(streamSweepSpec(), o); err != nil { // warm again, observed
		t.Fatal(err)
	}
	m := col.Metrics()
	if m.PhaseCells != 0 {
		t.Fatalf("cache hits reported phase telemetry: %d cells", m.PhaseCells)
	}
	if want := len(streamSweepSpec().Scenarios) * 3; int(m.SweepCells) != want {
		t.Fatalf("SweepCells = %d, want %d", m.SweepCells, want)
	}
	if _, err := NewSession().Sweep(streamSweepSpec(), o); err != nil { // cold, observed
		t.Fatal(err)
	}
	m = col.Metrics()
	if m.PhaseCells == 0 || m.SimEvents == 0 {
		t.Fatalf("per-run collector saw no cell telemetry: %+v", m)
	}
}

// TestProgressRateETA: streaming progress carries elapsed time, a
// positive completion rate, and an ETA that reaches zero on the final
// cell; the recommender's progress shares the same contract.
func TestProgressRateETA(t *testing.T) {
	var events []Progress
	o := sweepOpts()
	o.OnProgress = func(p Progress) { events = append(events, p) }
	s := NewSession()
	if _, err := s.Sweep(streamSweepSpec(), o); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	for i, p := range events {
		if p.Elapsed <= 0 || p.Rate <= 0 {
			t.Fatalf("event %d: Elapsed %v Rate %v", i, p.Elapsed, p.Rate)
		}
		if i > 0 && p.Elapsed < events[i-1].Elapsed {
			t.Fatalf("elapsed went backwards at event %d", i)
		}
	}
	last := events[len(events)-1]
	if last.ETA != 0 {
		t.Fatalf("final event has ETA %v, want 0", last.ETA)
	}
	if mid := events[0]; mid.Completed < mid.Total && mid.ETA <= 0 {
		t.Fatalf("mid-run event has no ETA: %+v", mid)
	}

	events = nil
	rec, err := s.Recommend(context.Background(), RecommendSpec{
		Scenario: Scenario{Workload: "short-few", Direction: Up},
		Probes:   []Probe{{Media: VoIP}},
		Buffers:  []int{8, 32, 128},
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || len(events) == 0 {
		t.Fatal("recommend produced no progress")
	}
	for i, p := range events {
		if p.Elapsed <= 0 || p.Rate <= 0 {
			t.Fatalf("recommend event %d: Elapsed %v Rate %v", i, p.Elapsed, p.Rate)
		}
	}
}
