package bufferqoe

import (
	"testing"
	"time"
)

// TestHeadlineClaimWorkloadDominates asserts the paper's main finding
// end-to-end: "network workload, rather than buffer size, is the
// primary determinant of end-user QoE". Across a workload x buffer
// grid, the QoE spread attributable to workload must dwarf the spread
// attributable to buffer size.
func TestHeadlineClaimWorkloadDominates(t *testing.T) {
	opt := Options{
		Seed:     13,
		Duration: 6 * time.Second,
		Warmup:   4 * time.Second,
		Reps:     1,
	}
	scenarios := []string{"noBG", "long-many"}
	buffers := []int{8, 256}
	mos := map[string]map[int]float64{}
	for _, sc := range scenarios {
		mos[sc] = map[int]float64{}
		for _, buf := range buffers {
			r, err := MeasureWeb(Access, sc, Up, buf, opt)
			if err != nil {
				t.Fatal(err)
			}
			mos[sc][buf] = r.MOS
		}
	}
	spread := func(a, b float64) float64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	// Workload effect at each buffer size.
	workloadEffect := (spread(mos["noBG"][8], mos["long-many"][8]) +
		spread(mos["noBG"][256], mos["long-many"][256])) / 2
	// Buffer effect within each workload.
	bufferEffect := (spread(mos["noBG"][8], mos["noBG"][256]) +
		spread(mos["long-many"][8], mos["long-many"][256])) / 2
	if workloadEffect < 2*bufferEffect {
		t.Fatalf("workload effect %.2f MOS vs buffer effect %.2f MOS: headline claim not reproduced (%v)",
			workloadEffect, bufferEffect, mos)
	}
	if workloadEffect < 1.5 {
		t.Fatalf("workload effect only %.2f MOS; congestion should be decisive", workloadEffect)
	}
}

// TestClaimWildRTTsViaLookup asserts the paper's Section 3 framing —
// in-the-wild CDN flows see moderate RTTs (the mode of the per-flow
// max-RTT distribution sits well under a second), which is why
// bloated buffers are a latent rather than universal problem — using
// Result.Lookup, which distinguishes a real cell from an unknown
// coordinate (the legacy Value accessor forges 0 for both).
func TestClaimWildRTTsViaLookup(t *testing.T) {
	res, err := Run("fig1a", Options{Seed: 13, CDNFlows: 20000})
	if err != nil {
		t.Fatal(err)
	}
	mode, ok := res.Lookup(0, "max RTT", "mode (ms)")
	if !ok {
		t.Fatal("fig1a max-RTT mode cell missing")
	}
	if mode <= 0 || mode >= 1000 {
		t.Fatalf("max-RTT mode = %.1f ms, want a moderate (sub-second) mode", mode)
	}
	if _, ok := res.Lookup(0, "max RTT", "not-a-column"); ok {
		t.Fatal("Lookup invented a cell for an unknown column")
	}
	if _, ok := res.Lookup(99, "max RTT", "mode (ms)"); ok {
		t.Fatal("Lookup invented a cell for an out-of-range grid")
	}
}

// TestHeadlineClaimBufferbloatNarrow asserts the paper's second claim:
// bufferbloat seriously degrades QoE only when buffers are oversized
// AND sustainably filled — an oversized but idle buffer is harmless.
func TestHeadlineClaimBufferbloatNarrow(t *testing.T) {
	opt := Options{
		Seed:     14,
		Duration: 6 * time.Second,
		Warmup:   4 * time.Second,
		Reps:     1,
	}
	// Oversized + idle: excellent.
	idle, err := MeasureVoIP(Access, "noBG", Up, 256, opt)
	if err != nil {
		t.Fatal(err)
	}
	if idle.TalkMOS < 4.0 {
		t.Fatalf("oversized idle buffer talk MOS = %v, want excellent", idle.TalkMOS)
	}
	// Oversized + sustainably filled: broken.
	filled, err := MeasureVoIP(Access, "long-many", Up, 256, opt)
	if err != nil {
		t.Fatal(err)
	}
	if filled.TalkMOS > 3.0 {
		t.Fatalf("oversized filled buffer talk MOS = %v, want degraded", filled.TalkMOS)
	}
	// Right-sized + same congestion: clearly better than bloated.
	small, err := MeasureVoIP(Access, "long-many", Up, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	if small.TalkMOS <= filled.TalkMOS {
		t.Fatalf("small-buffer MOS %v <= bloated %v under congestion", small.TalkMOS, filled.TalkMOS)
	}
}
