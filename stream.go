package bufferqoe

import (
	"context"
	"iter"
	"time"

	"bufferqoe/internal/experiments"
)

// SweepStream runs the sweep's cells across the session's worker pool
// and yields each completed SweepCell as it finishes — in completion
// order, which varies run to run, while every cell's *value* is the
// deterministic value the batch Sweep reports for the same spec (cell
// seeds derive from canonical specs, never from scheduling). The
// returned iterator is single-use.
//
// Consumption contract:
//
//   - A compile/validation error, or a context cancellation, is
//     yielded as the iterator's final (zero SweepCell, error) pair;
//     iteration then stops. Cancellation errors satisfy
//     errors.Is(err, ErrCanceled).
//   - Canceling ctx abandons the queued cells promptly; cells already
//     simulating drain into the session cache (a later identical
//     sweep reuses them and re-simulates only what was abandoned).
//   - Breaking out of the loop early behaves like a cancellation:
//     remaining queued cells are abandoned, in-flight cells drain in
//     the background, and no goroutines are leaked.
//   - o.OnProgress, when set, is called once per completed cell
//     before it is yielded.
func (s *Session) SweepStream(ctx context.Context, sw Sweep, o Options) iter.Seq2[SweepCell, error] {
	return func(yield func(SweepCell, error) bool) {
		plan, err := compileSweep(sw)
		if err != nil {
			yield(SweepCell{}, err)
			return
		}
		err = s.streamSweep(ctx, plan, o, func(_ int, c SweepCell) bool {
			return yield(c, nil)
		})
		if err != nil {
			yield(SweepCell{}, err)
		}
	}
}

// SweepStream streams a sweep on the default session; see
// Session.SweepStream.
func SweepStream(ctx context.Context, sw Sweep, o Options) iter.Seq2[SweepCell, error] {
	return defaultSession.SweepStream(ctx, sw, o)
}

// SweepCtx is Sweep bounded by ctx: the full grid, or ErrCanceled if
// the context was canceled before every cell executed. It consumes
// the same execution path as SweepStream, so grid and stream cannot
// disagree on a cell's value.
func (s *Session) SweepCtx(ctx context.Context, sw Sweep, o Options) (*Grid, error) {
	plan, err := compileSweep(sw)
	if err != nil {
		return nil, err
	}
	err = s.streamSweep(ctx, plan, o, func(i int, c SweepCell) bool {
		plan.grid.Cells[i] = c
		return true
	})
	if err != nil {
		return nil, err
	}
	return plan.grid, nil
}

// SweepGridCtx runs a ctx-bounded sweep on the default session.
func SweepGridCtx(ctx context.Context, sw Sweep, o Options) (*Grid, error) {
	return defaultSession.SweepCtx(ctx, sw, o)
}

// streamSweep executes a compiled sweep plan, invoking emit(i, cell)
// for every completed cell in completion order, on this goroutine.
// emit returning false abandons the remaining cells (like a
// cancellation) and returns nil; a context cancellation returns the
// first cell error (ErrCanceled). o.OnProgress is invoked before each
// emit.
//
// Leak-freedom argument: the results channel is buffered to the full
// cell count, so completion callbacks never block, so the submitting
// goroutine always runs to ProbeSubmit's return and exits — whether
// or not the consumer is still listening. In-flight cells at
// abandonment keep simulating until they drain into the cache; the
// submitting goroutine outlives streamSweep by exactly that drain
// time and then exits on its own.
func (s *Session) streamSweep(ctx context.Context, plan *sweepPlan, o Options, emit func(i int, c SweepCell) bool) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type completion struct {
		i   int
		v   experiments.ProbeValue
		err error
	}
	ch := make(chan completion, len(plan.specs))
	go func() {
		defer close(ch)
		err := s.inner.ProbeSubmit(ctx, plan.specs, o.internal(), func(i int, v experiments.ProbeValue, err error) {
			ch <- completion{i: i, v: v, err: err}
		})
		if err != nil {
			// Compilation failed before any cell ran (unreachable for
			// specs that came from compileSweep, which validates; kept
			// for defense in depth). Surface it as a cell error.
			ch <- completion{i: -1, err: err}
		}
	}()

	// The sweep-cell counter goes to the run's collector (or the
	// session's, via the same fallback the cells themselves use).
	col := o.Collector.raw()
	if col == nil {
		col = s.inner.Collector()
	}

	start := time.Now()
	completed, total := 0, len(plan.specs)
	for c := range ch {
		if c.err != nil {
			// First cancellation (or compile failure) ends the stream;
			// the deferred cancel abandons the still-queued cells and the
			// buffered channel absorbs their completions.
			return c.err
		}
		completed++
		if col != nil {
			col.SweepCells.Inc()
		}
		cell := plan.cell(c.i, c.v)
		if o.OnProgress != nil {
			o.OnProgress(Progress{Completed: completed, Total: total, Cell: cell}.timing(start))
		}
		if !emit(c.i, cell) {
			return nil
		}
	}
	return nil
}
